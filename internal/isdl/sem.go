package isdl

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// analyze resolves names, checks widths and encodings, builds signatures and
// verifies decodability. It mutates the description in place (resolving
// references and materializing literal widths).
func analyze(d *Description) error {
	if err := checkStorage(d); err != nil {
		return err
	}
	if err := resolveNonTerminals(d); err != nil {
		return err
	}
	if err := resolveOperations(d); err != nil {
		return err
	}
	if err := resolveConstraints(d); err != nil {
		return err
	}
	return nil
}

func semErr(p Pos, format string, args ...interface{}) error {
	return &lexError{p, fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------- storage --

func checkStorage(d *Description) error {
	var pcCount, imCount int
	for _, st := range d.Storage {
		if st.Width <= 0 || st.Width > bitvec.MaxWidth {
			return semErr(st.Pos, "storage %s: width %d out of range", st.Name, st.Width)
		}
		if st.Kind.Addressed() {
			if st.Depth <= 0 {
				return semErr(st.Pos, "storage %s: %s requires a positive depth", st.Name, st.Kind)
			}
		} else if st.Depth != 1 {
			return semErr(st.Pos, "storage %s: %s cannot have a depth", st.Name, st.Kind)
		}
		switch st.Kind {
		case StProgramCounter:
			pcCount++
		case StInstructionMemory:
			imCount++
		}
	}
	if pcCount != 1 {
		return semErr(Pos{}, "description must declare exactly one ProgramCounter (found %d)", pcCount)
	}
	if imCount != 1 {
		return semErr(Pos{}, "description must declare exactly one InstructionMemory (found %d)", imCount)
	}

	names := map[string]bool{}
	for n := range d.StorageByName {
		names[n] = true
	}
	for _, a := range d.Aliases {
		if names[a.Name] {
			return semErr(a.Pos, "alias %s collides with another name", a.Name)
		}
		names[a.Name] = true
		st, ok := d.StorageByName[a.Target]
		if !ok {
			return semErr(a.Pos, "alias %s: unknown storage %s", a.Name, a.Target)
		}
		if st.Kind.Addressed() != a.Indexed {
			if a.Indexed {
				return semErr(a.Pos, "alias %s: %s is not addressed", a.Name, a.Target)
			}
			return semErr(a.Pos, "alias %s: %s requires an element index", a.Name, a.Target)
		}
		if a.Indexed && a.Index >= uint64(st.Depth) {
			return semErr(a.Pos, "alias %s: index %d exceeds depth %d", a.Name, a.Index, st.Depth)
		}
		if a.Sliced && (a.Lo < 0 || a.Hi >= st.Width) {
			return semErr(a.Pos, "alias %s: bit range [%d:%d] exceeds width %d", a.Name, a.Hi, a.Lo, st.Width)
		}
	}
	return nil
}

// PC returns the program-counter storage.
func (d *Description) PC() *Storage {
	for _, st := range d.Storage {
		if st.Kind == StProgramCounter {
			return st
		}
	}
	return nil
}

// InstructionMemory returns the instruction memory storage.
func (d *Description) InstructionMemory() *Storage {
	for _, st := range d.Storage {
		if st.Kind == StInstructionMemory {
			return st
		}
	}
	return nil
}

// AliasByName returns the named alias, or nil.
func (d *Description) AliasByName(name string) *Alias {
	for _, a := range d.Aliases {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AliasWidth returns the width in bits of an alias target.
func (d *Description) AliasWidth(a *Alias) int {
	if a.Sliced {
		return a.Hi - a.Lo + 1
	}
	return d.StorageByName[a.Target].Width
}

// ---------------------------------------------------- non-terminal résolution --

// resolveNonTerminals processes non-terminals in dependency order so that a
// non-terminal's value width is known before any user of it is checked.
func resolveNonTerminals(d *Description) error {
	// Topological order over NT → NT references, detecting cycles.
	const (
		white = iota
		gray
		black
	)
	color := map[string]int{}
	var order []string
	var visit func(name string, at Pos) error
	visit = func(name string, at Pos) error {
		nt, ok := d.NonTerminals[name]
		if !ok {
			return semErr(at, "unknown non-terminal %s", name)
		}
		switch color[name] {
		case gray:
			return semErr(nt.Pos, "non-terminal %s is recursively defined", name)
		case black:
			return nil
		}
		color[name] = gray
		for _, opt := range nt.Options {
			for _, prm := range opt.Params {
				if _, isTok := d.Tokens[prm.TypeName]; isTok {
					continue
				}
				if err := visit(prm.TypeName, prm.Pos); err != nil {
					return err
				}
			}
		}
		color[name] = black
		order = append(order, name)
		return nil
	}
	// Deterministic iteration order for reproducible diagnostics.
	names := make([]string, 0, len(d.NonTerminals))
	for n := range d.NonTerminals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := visit(n, d.NonTerminals[n].Pos); err != nil {
			return err
		}
	}

	for _, name := range order {
		nt := d.NonTerminals[name]
		if err := resolveNT(d, nt); err != nil {
			return err
		}
	}
	return nil
}

func resolveNT(d *Description, nt *NonTerminal) error {
	if nt.RetWidth <= 0 || nt.RetWidth > d.WordWidth*8 {
		return semErr(nt.Pos, "non-terminal %s: return width %d out of range", nt.Name, nt.RetWidth)
	}
	nt.Lvalue = true
	for _, opt := range nt.Options {
		if err := resolveParams(d, opt.Params); err != nil {
			return err
		}
		if err := checkEncode(nt.RetWidth, opt.Encode, opt.Params, fmt.Sprintf("non-terminal %s option %d", nt.Name, opt.Index)); err != nil {
			return err
		}
		opt.Sig = buildSignature(nt.RetWidth, opt.Encode)

		if opt.Value == nil {
			return semErr(opt.Pos, "non-terminal %s option %d: missing Value", nt.Name, opt.Index)
		}
		sc := &scope{d: d, params: opt.Params}
		w, err := sc.checkExpr(opt.Value)
		if err != nil {
			return err
		}
		if w == 0 {
			return semErr(opt.Value.Pos(), "non-terminal %s option %d: Value width cannot be inferred; use a sized literal or sext/zext", nt.Name, opt.Index)
		}
		if nt.ValueWidth == 0 {
			nt.ValueWidth = w
		} else if nt.ValueWidth != w {
			return semErr(opt.Value.Pos(), "non-terminal %s: option %d Value width %d differs from %d", nt.Name, opt.Index, w, nt.ValueWidth)
		}
		if !sc.isLvalue(opt.Value) {
			nt.Lvalue = false
		}
		if err := sc.checkStmts(opt.SideEffect); err != nil {
			return err
		}
		if err := checkCostRanges(opt.Costs, opt.Timing, true, opt.Pos); err != nil {
			return err
		}
	}
	// Options must be mutually distinguishable for the recursive
	// disassembler (Figure 4).
	for i, a := range nt.Options {
		for _, b := range nt.Options[i+1:] {
			if !a.Sig.ConflictsWith(&b.Sig) {
				return semErr(b.Pos, "non-terminal %s: options %d and %d are not distinguishable by constant bits", nt.Name, a.Index, b.Index)
			}
		}
	}
	return nil
}

func resolveParams(d *Description, params []*Param) error {
	seen := map[string]bool{}
	for _, prm := range params {
		if seen[prm.Name] {
			return semErr(prm.Pos, "duplicate parameter %s", prm.Name)
		}
		seen[prm.Name] = true
		if tok, ok := d.Tokens[prm.TypeName]; ok {
			prm.Token = tok
			continue
		}
		if nt, ok := d.NonTerminals[prm.TypeName]; ok {
			prm.NT = nt
			continue
		}
		return semErr(prm.Pos, "parameter %s: unknown type %s", prm.Name, prm.TypeName)
	}
	return nil
}

// checkEncode validates bitfield assignments against the destination width
// and verifies every parameter is fully and uniquely encoded — the
// reversibility obligation behind Axiom 1.
func checkEncode(width int, encode []*BitAssign, params []*Param, what string) error {
	dstUsed := make([]bool, width)
	covered := make([][]bool, len(params))
	for i, prm := range params {
		covered[i] = make([]bool, prm.RetWidth())
	}
	for _, ba := range encode {
		if ba.Hi >= width {
			return semErr(ba.Pos, "%s: bitfield [%d:%d] exceeds destination width %d", what, ba.Hi, ba.Lo, width)
		}
		for b := ba.Lo; b <= ba.Hi; b++ {
			if dstUsed[b] {
				return semErr(ba.Pos, "%s: destination bit %d assigned more than once", what, b)
			}
			dstUsed[b] = true
		}
		if ba.ConstSet {
			continue
		}
		prm := params[ba.Param]
		phi, plo := ba.PHi, ba.PLo
		if phi < 0 {
			phi, plo = prm.RetWidth()-1, 0
		}
		if phi >= prm.RetWidth() {
			return semErr(ba.Pos, "%s: slice [%d:%d] exceeds parameter %s width %d", what, phi, plo, prm.Name, prm.RetWidth())
		}
		if phi-plo != ba.Hi-ba.Lo {
			return semErr(ba.Pos, "%s: destination width %d does not match parameter slice width %d", what, ba.Width(), phi-plo+1)
		}
		for b := plo; b <= phi; b++ {
			if covered[ba.Param][b] {
				return semErr(ba.Pos, "%s: parameter %s bit %d encoded more than once", what, prm.Name, b)
			}
			covered[ba.Param][b] = true
		}
	}
	for i, prm := range params {
		for b, ok := range covered[i] {
			if !ok {
				return semErr(prm.Pos, "%s: parameter %s bit %d is never encoded; the encoding is not reversible", what, prm.Name, b)
			}
		}
	}
	return nil
}

func checkCostRanges(c Costs, t Timing, isOption bool, p Pos) error {
	if c.Cycle < 0 || c.Stall < 0 || c.Size < 0 {
		return semErr(p, "costs must be non-negative")
	}
	if t.Latency < 0 || t.Usage < 0 {
		return semErr(p, "timing parameters must be non-negative")
	}
	if !isOption {
		if c.Cycle < 1 {
			return semErr(p, "operation Cycle cost must be at least 1")
		}
		if c.Size < 1 {
			return semErr(p, "operation Size cost must be at least 1")
		}
		if t.Latency < 1 {
			return semErr(p, "operation Latency must be at least 1")
		}
		if t.Usage < 1 {
			return semErr(p, "operation Usage must be at least 1")
		}
	}
	return nil
}

// ---------------------------------------------------------- operations --

func resolveOperations(d *Description) error {
	if len(d.Fields) == 0 {
		return semErr(Pos{}, "description has no instruction-set fields")
	}
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			if err := resolveParams(d, op.Params); err != nil {
				return err
			}
			width := d.WordWidth * op.Costs.Size
			if err := checkEncode(width, op.Encode, op.Params, op.QualName()); err != nil {
				return err
			}
			// Signatures span the widest instruction so every field can
			// match against the same fetched words.
			op.Sig = buildSignature(d.WordWidth*d.MaxSize(), op.Encode)
			sc := &scope{d: d, params: op.Params}
			if err := sc.checkStmts(op.Action); err != nil {
				return err
			}
			if err := sc.checkStmts(op.SideEffect); err != nil {
				return err
			}
			if err := checkCostRanges(op.Costs, op.Timing, false, op.Pos); err != nil {
				return err
			}
		}
		for i, a := range f.Ops {
			for _, b := range f.Ops[i+1:] {
				if !a.Sig.ConflictsWith(&b.Sig) {
					return semErr(b.Pos, "field %s: operations %s and %s are not distinguishable by constant bits", f.Name, a.Name, b.Name)
				}
			}
		}
	}
	return nil
}

func resolveConstraints(d *Description) error {
	for _, c := range d.Constraints {
		if err := resolveCExpr(d, c.Expr, c.Pos); err != nil {
			return err
		}
	}
	return nil
}

func resolveCExpr(d *Description, e CExpr, p Pos) error {
	switch e := e.(type) {
	case *CAtom:
		f := d.FieldByName(e.Field)
		if f == nil {
			return semErr(p, "constraint references unknown field %s", e.Field)
		}
		op, ok := f.ByName[e.Op]
		if !ok {
			return semErr(p, "constraint references unknown operation %s.%s", e.Field, e.Op)
		}
		e.ResolvedField, e.ResolvedOp = f, op
		return nil
	case *CNot:
		return resolveCExpr(d, e.X, p)
	case *CBin:
		if err := resolveCExpr(d, e.X, p); err != nil {
			return err
		}
		return resolveCExpr(d, e.Y, p)
	}
	return semErr(p, "malformed constraint")
}

// -------------------------------------------------------- RTL checking --

// scope is the name-resolution context for RTL expressions: the description
// plus the parameters of the enclosing operation or option.
type scope struct {
	d      *Description
	params []*Param
}

func (sc *scope) param(name string) *Param {
	for _, p := range sc.params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (sc *scope) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := sc.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (sc *scope) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Assign:
		lw, err := sc.checkExpr(s.LHS)
		if err != nil {
			return err
		}
		if !sc.isLvalue(s.LHS) {
			return semErr(s.LHS.Pos(), "%s is not assignable", s.LHS)
		}
		rw, err := sc.checkExpr(s.RHS)
		if err != nil {
			return err
		}
		if rw == 0 {
			if err := sc.materialize(s.RHS, lw); err != nil {
				return err
			}
			rw = lw
		}
		if rw != lw {
			return semErr(s.At, "assignment width mismatch: %s is %d bits, %s is %d bits (use sext/zext/trunc)", s.LHS, lw, s.RHS, rw)
		}
		return nil
	case *If:
		cw, err := sc.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if cw == 0 {
			if err := sc.materialize(s.Cond, 1); err != nil {
				return err
			}
		}
		if err := sc.checkStmts(s.Then); err != nil {
			return err
		}
		return sc.checkStmts(s.Else)
	case *ExprStmt:
		call, ok := s.X.(*Call)
		if !ok || (call.Fn != "push" && call.Fn != "pop") {
			return semErr(s.At, "only push/pop may be used as statements")
		}
		_, err := sc.checkExpr(s.X)
		return err
	}
	return semErr(s.Pos(), "unknown statement")
}

// isLvalue reports whether e denotes a storage location.
func (sc *scope) isLvalue(e Expr) bool {
	switch e := e.(type) {
	case *Ref:
		switch {
		case e.Storage != nil:
			return !e.Storage.Kind.Addressed()
		case e.AliasTo != nil:
			return true
		case e.Param != nil:
			return e.Param.NT != nil && e.Param.NT.Lvalue
		}
	case *Index:
		return true
	case *SliceE:
		return sc.isLvalue(e.X)
	}
	return false
}

// checkExpr resolves names and computes widths. Width 0 means "untyped
// numeric literal"; callers must materialize it from context.
func (sc *scope) checkExpr(e Expr) (int, error) {
	switch e := e.(type) {
	case *Lit:
		if e.Sized {
			return e.Val.Width(), nil
		}
		return 0, nil

	case *Ref:
		if p := sc.param(e.Name); p != nil {
			e.Param = p
			e.W = p.ValueWidth()
			return e.W, nil
		}
		if st, ok := sc.d.StorageByName[e.Name]; ok {
			if st.Kind.Addressed() {
				return 0, semErr(e.At, "%s is addressed storage; index it", e.Name)
			}
			e.Storage = st
			e.W = st.Width
			return e.W, nil
		}
		if a := sc.d.AliasByName(e.Name); a != nil {
			e.AliasTo = a
			e.W = sc.d.AliasWidth(a)
			return e.W, nil
		}
		return 0, semErr(e.At, "unknown name %s", e.Name)

	case *Index:
		st, ok := sc.d.StorageByName[e.Name]
		if !ok {
			return 0, semErr(e.At, "unknown storage %s", e.Name)
		}
		if !st.Kind.Addressed() {
			return 0, semErr(e.At, "%s is not addressed storage", e.Name)
		}
		e.Storage = st
		iw, err := sc.checkExpr(e.Idx)
		if err != nil {
			return 0, err
		}
		if iw == 0 {
			if err := sc.materialize(e.Idx, addrBits(st.Depth)); err != nil {
				return 0, err
			}
		}
		e.W = st.Width
		return e.W, nil

	case *SliceE:
		xw, err := sc.checkExpr(e.X)
		if err != nil {
			return 0, err
		}
		if xw == 0 {
			return 0, semErr(e.At, "cannot slice an unsized literal")
		}
		if e.Hi >= xw {
			return 0, semErr(e.At, "slice [%d:%d] exceeds %d-bit operand", e.Hi, e.Lo, xw)
		}
		return e.Width(), nil

	case *Unary:
		xw, err := sc.checkExpr(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if xw == 0 {
				if err := sc.materialize(e.X, 1); err != nil {
					return 0, err
				}
			}
			e.W = 1
		case "-", "~":
			if xw == 0 {
				return 0, nil // stays untyped; folded at materialization
			}
			e.W = xw
		default:
			return 0, semErr(e.At, "unknown unary operator %s", e.Op)
		}
		return e.W, nil

	case *Binary:
		xw, err := sc.checkExpr(e.X)
		if err != nil {
			return 0, err
		}
		yw, err := sc.checkExpr(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "<<", ">>":
			if xw == 0 {
				return 0, semErr(e.At, "shift of an unsized literal; size it")
			}
			if yw == 0 {
				if err := sc.materialize(e.Y, 32); err != nil {
					return 0, err
				}
			}
			e.W = xw
			return e.W, nil
		case "&&", "||":
			if xw == 0 {
				if err := sc.materialize(e.X, 1); err != nil {
					return 0, err
				}
			}
			if yw == 0 {
				if err := sc.materialize(e.Y, 1); err != nil {
					return 0, err
				}
			}
			e.W = 1
			return 1, nil
		}
		// Width-matched operators.
		switch {
		case xw == 0 && yw == 0:
			if isCompare(e.Op) {
				return 0, semErr(e.At, "comparison of two unsized literals")
			}
			return 0, nil
		case xw == 0:
			if err := sc.materialize(e.X, yw); err != nil {
				return 0, err
			}
			xw = yw
		case yw == 0:
			if err := sc.materialize(e.Y, xw); err != nil {
				return 0, err
			}
			yw = xw
		}
		if xw != yw {
			return 0, semErr(e.At, "operand width mismatch %d vs %d for %q", xw, yw, e.Op)
		}
		if isCompare(e.Op) {
			e.W = 1
		} else {
			e.W = xw
		}
		return e.W, nil

	case *Call:
		return sc.checkCall(e)
	}
	return 0, semErr(e.Pos(), "unknown expression")
}

func isCompare(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// addrBits returns the index width for a storage of the given depth.
func addrBits(depth int) int {
	if depth <= 1 {
		return 1
	}
	return bitsFor(uint64(depth - 1))
}

func (sc *scope) checkCall(e *Call) (int, error) {
	argc := func(n int) error {
		if len(e.Args) != n {
			return semErr(e.At, "%s expects %d arguments, got %d", e.Fn, n, len(e.Args))
		}
		return nil
	}
	// widthArg extracts a static width from an unsized literal argument.
	widthArg := func(i int) (int, error) {
		lit, ok := e.Args[i].(*Lit)
		if !ok || lit.Sized || lit.Neg {
			return 0, semErr(e.Args[i].Pos(), "%s: width argument must be a plain decimal constant", e.Fn)
		}
		if lit.Dec == 0 || lit.Dec > bitvec.MaxWidth {
			return 0, semErr(e.Args[i].Pos(), "%s: width %d out of range", e.Fn, lit.Dec)
		}
		return int(lit.Dec), nil
	}
	// sized checks argument i and forbids untyped results.
	sized := func(i int) (int, error) {
		w, err := sc.checkExpr(e.Args[i])
		if err != nil {
			return 0, err
		}
		if w == 0 {
			return 0, semErr(e.Args[i].Pos(), "%s: argument %d must have a definite width", e.Fn, i+1)
		}
		return w, nil
	}
	// pairSameWidth checks two arguments and unifies untyped literals.
	pairSameWidth := func() (int, error) {
		xw, err := sc.checkExpr(e.Args[0])
		if err != nil {
			return 0, err
		}
		yw, err := sc.checkExpr(e.Args[1])
		if err != nil {
			return 0, err
		}
		switch {
		case xw == 0 && yw == 0:
			return 0, semErr(e.At, "%s: both arguments unsized", e.Fn)
		case xw == 0:
			if err := sc.materialize(e.Args[0], yw); err != nil {
				return 0, err
			}
			xw = yw
		case yw == 0:
			if err := sc.materialize(e.Args[1], xw); err != nil {
				return 0, err
			}
		}
		if yw != 0 && xw != yw {
			return 0, semErr(e.At, "%s: operand widths differ (%d vs %d)", e.Fn, xw, yw)
		}
		return xw, nil
	}

	switch e.Fn {
	case "sext", "zext", "trunc":
		if err := argc(2); err != nil {
			return 0, err
		}
		if _, err := sized(0); err != nil {
			return 0, err
		}
		w, err := widthArg(1)
		if err != nil {
			return 0, err
		}
		e.W = w
		return w, nil

	case "carry", "borrow", "addov", "subov", "slt", "sle", "sgt", "sge":
		if err := argc(2); err != nil {
			return 0, err
		}
		if _, err := pairSameWidth(); err != nil {
			return 0, err
		}
		e.W = 1
		return 1, nil

	case "asr":
		if err := argc(2); err != nil {
			return 0, err
		}
		w, err := sized(0)
		if err != nil {
			return 0, err
		}
		sw, err := sc.checkExpr(e.Args[1])
		if err != nil {
			return 0, err
		}
		if sw == 0 {
			if err := sc.materialize(e.Args[1], 32); err != nil {
				return 0, err
			}
		}
		e.W = w
		return w, nil

	case "concat":
		if len(e.Args) < 2 {
			return 0, semErr(e.At, "concat needs at least two arguments")
		}
		total := 0
		for i := range e.Args {
			w, err := sized(i)
			if err != nil {
				return 0, err
			}
			total += w
		}
		e.W = total
		return total, nil

	case "push":
		if err := argc(2); err != nil {
			return 0, err
		}
		st, err := sc.stackArg(e.Args[0])
		if err != nil {
			return 0, err
		}
		vw, err := sc.checkExpr(e.Args[1])
		if err != nil {
			return 0, err
		}
		if vw == 0 {
			if err := sc.materialize(e.Args[1], st.Width); err != nil {
				return 0, err
			}
			vw = st.Width
		}
		if vw != st.Width {
			return 0, semErr(e.At, "push: value width %d does not match stack width %d", vw, st.Width)
		}
		e.W = 0
		return 0, nil

	case "pop":
		if err := argc(1); err != nil {
			return 0, err
		}
		st, err := sc.stackArg(e.Args[0])
		if err != nil {
			return 0, err
		}
		e.W = st.Width
		return e.W, nil
	}
	return 0, semErr(e.At, "unknown builtin %s", e.Fn)
}

func (sc *scope) stackArg(e Expr) (*Storage, error) {
	ref, ok := e.(*Ref)
	if !ok {
		return nil, semErr(e.Pos(), "push/pop argument must name a Stack storage")
	}
	st, ok := sc.d.StorageByName[ref.Name]
	if !ok || st.Kind != StStack {
		return nil, semErr(e.Pos(), "%s is not a Stack storage", ref.Name)
	}
	ref.Storage = st
	ref.W = st.Width
	return st, nil
}

// materialize pushes a context width into an untyped expression tree,
// converting unsized literals into sized values (with range checking) and
// fixing the widths of untyped unary/binary nodes.
func (sc *scope) materialize(e Expr, w int) error {
	switch e := e.(type) {
	case *Lit:
		if e.Sized {
			if e.Val.Width() != w {
				return semErr(e.At, "literal width %d where %d expected", e.Val.Width(), w)
			}
			return nil
		}
		if e.Neg {
			v := int64(e.Dec)
			if e.Dec > 1<<62 {
				return semErr(e.At, "negative literal magnitude too large")
			}
			e.Val = bitvec.FromInt64(w, -v)
			// Range check: the value must round-trip.
			if w < 64 && e.Val.Int64() != -v {
				return semErr(e.At, "literal -%d does not fit in %d bits", e.Dec, w)
			}
		} else {
			e.Val = bitvec.FromUint64(w, e.Dec)
			if w < 64 && e.Val.Uint64() != e.Dec {
				return semErr(e.At, "literal %d does not fit in %d bits", e.Dec, w)
			}
		}
		e.Sized = true
		return nil
	case *Unary:
		if e.W != 0 {
			if e.W != w {
				return semErr(e.At, "width mismatch %d vs %d", e.W, w)
			}
			return nil
		}
		e.W = w
		return sc.materialize(e.X, w)
	case *Binary:
		if e.W != 0 {
			if e.W != w {
				return semErr(e.At, "width mismatch %d vs %d", e.W, w)
			}
			return nil
		}
		e.W = w
		if err := sc.materialize(e.X, w); err != nil {
			return err
		}
		return sc.materialize(e.Y, w)
	}
	if e.Width() != w {
		return semErr(e.Pos(), "width mismatch: %s is %d bits where %d expected", e, e.Width(), w)
	}
	return nil
}
