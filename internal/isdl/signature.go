package isdl

import (
	"strings"

	"repro/internal/bitvec"
)

// This file implements operation signatures (paper §3.3.2, Figure 3): an
// image of the instruction word with a symbol per bit. Signatures drive the
// disassembler (Figure 4) and the hardware decode logic (§4.2). They are
// built during semantic analysis directly from the bitfield assignments, so
// Axiom 1 — each parameter symbol is a function of a single parameter — holds
// by construction: the grammar only admits "bits = constant" and
// "bits = (slice of) one parameter".

// SigBitKind classifies one signature bit.
type SigBitKind uint8

const (
	// SigDontCare: the assembly function does not set this bit.
	SigDontCare SigBitKind = iota
	// SigConst: the bit is a constant 0 or 1.
	SigConst
	// SigParam: the bit equals bit PBit of parameter Param's return value.
	SigParam
)

// SigBit is one bit of a signature.
type SigBit struct {
	Kind  SigBitKind
	Const uint8 // 0 or 1 when Kind == SigConst
	Param int   // parameter index when Kind == SigParam
	PBit  int   // bit of the parameter's return value
}

// Signature is the per-operation (or per-option) image of the instruction
// word (or non-terminal return value).
type Signature struct {
	Bits []SigBit
}

// buildSignature constructs the signature of an operation or option from its
// bitfield assignments. width is the full destination width (instruction
// words × word width, or the non-terminal's return width).
func buildSignature(width int, encode []*BitAssign) Signature {
	sig := Signature{Bits: make([]SigBit, width)}
	for _, ba := range encode {
		for k := 0; k <= ba.Hi-ba.Lo; k++ {
			bit := ba.Lo + k
			if ba.ConstSet {
				sig.Bits[bit] = SigBit{Kind: SigConst, Const: uint8(ba.Const.Bit(k))}
			} else {
				plo := ba.PLo
				if ba.PHi < 0 {
					plo = 0
				}
				sig.Bits[bit] = SigBit{Kind: SigParam, Param: ba.Param, PBit: plo + k}
			}
		}
	}
	return sig
}

// Match reports whether the constant part of the signature matches word.
// Per the paper, the match over constants is unique within a field for a
// decodeable assembly function.
func (s *Signature) Match(word bitvec.Value) bool {
	for i, b := range s.Bits {
		if b.Kind == SigConst && uint8(word.Bit(i)) != b.Const {
			return false
		}
	}
	return true
}

// Extract reverses the encoding of parameter param: it gathers the
// instruction-word bits that encode the parameter back into a retWidth-bit
// return value. Bits of the parameter that are not encoded anywhere read as
// zero (semantic analysis guarantees full coverage, so this only happens for
// hand-built signatures in tests).
func (s *Signature) Extract(param, retWidth int, word bitvec.Value) bitvec.Value {
	v := bitvec.New(retWidth)
	for i, b := range s.Bits {
		if b.Kind == SigParam && b.Param == param && b.PBit < retWidth {
			v = v.WithBit(b.PBit, word.Bit(i))
		}
	}
	return v
}

// ConflictsWith reports whether some bit position is constant in both
// signatures with different values — the condition that makes two operations
// of one field distinguishable.
func (s *Signature) ConflictsWith(o *Signature) bool {
	n := len(s.Bits)
	if len(o.Bits) < n {
		n = len(o.Bits)
	}
	for i := 0; i < n; i++ {
		if s.Bits[i].Kind == SigConst && o.Bits[i].Kind == SigConst && s.Bits[i].Const != o.Bits[i].Const {
			return true
		}
	}
	return false
}

// ConstMask returns the positions and values of the constant bits, for the
// decode-logic generator: mask has 1s where the signature is constant, and
// val holds the constant values at those positions.
func (s *Signature) ConstMask() (mask, val bitvec.Value) {
	mask = bitvec.New(len(s.Bits))
	val = bitvec.New(len(s.Bits))
	for i, b := range s.Bits {
		if b.Kind == SigConst {
			mask = mask.WithBit(i, 1)
			val = val.WithBit(i, uint(b.Const))
		}
	}
	return mask, val
}

// String renders the signature MSB-first with 'x' for don't care, '0'/'1'
// for constants and 'a','b',… for parameters — the notation of Figure 3.
func (s *Signature) String() string {
	var sb strings.Builder
	for i := len(s.Bits) - 1; i >= 0; i-- {
		b := s.Bits[i]
		switch b.Kind {
		case SigDontCare:
			sb.WriteByte('x')
		case SigConst:
			sb.WriteByte('0' + b.Const)
		case SigParam:
			sb.WriteByte('a' + byte(b.Param%26))
		}
	}
	return sb.String()
}
