package isdl

import (
	"fmt"
	"strings"
)

// lexKind classifies lexical tokens of the ISDL concrete syntax.
type lexKind int

const (
	lexEOF lexKind = iota
	lexIdent
	lexNumber // decimal, 0b…, 0x…, or sized n'b/n'h/n'd
	lexString
	lexPunct // single- or multi-character operator / punctuation
)

// lexToken is one lexical token.
type lexToken struct {
	Kind lexKind
	Text string
	Pos  Pos

	// Number payload.
	NumVal   uint64
	NumWidth int // 0 for unsized decimals
}

// lexError reports a lexical or syntax error with its position.
type lexError struct {
	Pos Pos
	Msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// puncts lists multi-character operators longest-first so maximal munch wins.
var puncts = []string{
	"<-", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "..",
	"(", ")", "{", "}", "[", "]", ":", ";", ",", ".", "#",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "@",
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.pos()
			l.advance(2)
			for {
				if l.off+1 >= len(l.src) {
					return &lexError{start, "unterminated block comment"}
				}
				if l.src[l.off] == '*' && l.src[l.off+1] == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (lexToken, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return lexToken{}, err
	}
	if l.off >= len(l.src) {
		return lexToken{Kind: lexEOF, Pos: l.pos()}, nil
	}
	p := l.pos()
	c := l.src[l.off]

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.src[l.off]) {
			l.advance(1)
		}
		return lexToken{Kind: lexIdent, Text: l.src[start:l.off], Pos: p}, nil

	case c == '"':
		l.advance(1)
		start := l.off
		for l.off < len(l.src) && l.src[l.off] != '"' && l.src[l.off] != '\n' {
			l.advance(1)
		}
		if l.off >= len(l.src) || l.src[l.off] != '"' {
			return lexToken{}, &lexError{p, "unterminated string"}
		}
		s := l.src[start:l.off]
		l.advance(1)
		return lexToken{Kind: lexString, Text: s, Pos: p}, nil

	case isDigit(c):
		return l.lexNumber(p)
	}

	for _, op := range puncts {
		if strings.HasPrefix(l.src[l.off:], op) {
			l.advance(len(op))
			return lexToken{Kind: lexPunct, Text: op, Pos: p}, nil
		}
	}
	return lexToken{}, &lexError{p, fmt.Sprintf("unexpected character %q", c)}
}

// lexNumber handles:
//
//	123        unsized decimal
//	0b1011     sized binary, width = digit count
//	0x2f       sized hexadecimal, width = 4 × digit count
//	8'd255     sized decimal
//	8'hff      sized hexadecimal
//	4'b1010    sized binary
func (l *lexer) lexNumber(p Pos) (lexToken, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.src[l.off]) {
		l.advance(1)
	}
	dec := l.src[start:l.off]

	if l.off < len(l.src) && l.src[l.off] == '\'' {
		// Verilog-style sized literal.
		width, err := parseDecimal(dec)
		if err != nil || width == 0 {
			return lexToken{}, &lexError{p, "invalid literal width"}
		}
		l.advance(1)
		if l.off >= len(l.src) {
			return lexToken{}, &lexError{p, "truncated sized literal"}
		}
		base := l.src[l.off]
		l.advance(1)
		ds := l.off
		for l.off < len(l.src) && (isIdentCont(l.src[l.off])) {
			l.advance(1)
		}
		digits := l.src[ds:l.off]
		var v uint64
		switch base {
		case 'd':
			v, err = parseDecimal(digits)
		case 'h':
			v, err = parseHex(digits)
		case 'b':
			v, err = parseBin(digits)
		default:
			return lexToken{}, &lexError{p, fmt.Sprintf("unknown literal base %q", base)}
		}
		if err != nil {
			return lexToken{}, &lexError{p, err.Error()}
		}
		if int(width) > 64 {
			return lexToken{}, &lexError{p, "sized literals wider than 64 bits are not supported; use concat"}
		}
		return lexToken{Kind: lexNumber, Text: l.src[start:l.off], Pos: p, NumVal: v, NumWidth: int(width)}, nil
	}

	if dec == "0" && l.off < len(l.src) && (l.src[l.off] == 'b' || l.src[l.off] == 'x') {
		base := l.src[l.off]
		l.advance(1)
		ds := l.off
		for l.off < len(l.src) && isIdentCont(l.src[l.off]) {
			l.advance(1)
		}
		digits := l.src[ds:l.off]
		if len(digits) == 0 {
			return lexToken{}, &lexError{p, "truncated numeric literal"}
		}
		var v uint64
		var err error
		var width int
		switch base {
		case 'b':
			v, err = parseBin(digits)
			width = len(digits)
		case 'x':
			v, err = parseHex(digits)
			width = 4 * len(digits)
		}
		if err != nil {
			return lexToken{}, &lexError{p, err.Error()}
		}
		if width > 64 {
			return lexToken{}, &lexError{p, "literals wider than 64 bits are not supported; use concat"}
		}
		return lexToken{Kind: lexNumber, Text: l.src[start:l.off], Pos: p, NumVal: v, NumWidth: width}, nil
	}

	v, err := parseDecimal(dec)
	if err != nil {
		return lexToken{}, &lexError{p, err.Error()}
	}
	return lexToken{Kind: lexNumber, Text: dec, Pos: p, NumVal: v, NumWidth: 0}, nil
}

func parseDecimal(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid decimal digit %q", c)
		}
		nv := v*10 + uint64(c-'0')
		if nv < v {
			return 0, fmt.Errorf("decimal literal overflows 64 bits")
		}
		v = nv
	}
	return v, nil
}

func parseHex(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	var v uint64
	for _, c := range s {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid hex digit %q", c)
		}
		if v>>60 != 0 {
			return 0, fmt.Errorf("hex literal overflows 64 bits")
		}
		v = v<<4 | d
	}
	return v, nil
}

func parseBin(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	var v uint64
	for _, c := range s {
		if c != '0' && c != '1' {
			return 0, fmt.Errorf("invalid binary digit %q", c)
		}
		if v>>63 != 0 {
			return 0, fmt.Errorf("binary literal overflows 64 bits")
		}
		v = v<<1 | uint64(c-'0')
	}
	return v, nil
}
