package isdl

import (
	"strings"
	"testing"
)

const fpBase = `
Machine fptest;
Format 16;

Section Global_Definitions

Token reg "R" [0..3];
Non_Terminal src width 2 :
  option (r: reg)
    Encode { R[1:0] = r; }
    Value { GPR[r] }
;

Section Storage

RegFile GPR width 16 depth 4;
DataMemory DM width 16 depth 64;
InstructionMemory IM width 16 depth 64;
ProgramCounter PC width 16;
Register HLT width 1;

Section Instruction_Set

Field alu:
  op add (d: reg) (s: src)
    Encode { I[3:0] = 0b0001; I[5:4] = d; I[7:6] = s; }
    Action { GPR[d] <- GPR[d] + s; }
    Cost { Cycle = 1; Stall = 0; Size = 1; }
    Timing { Latency = 1; Usage = 1; }
  op halt
    Encode { I[3:0] = 0b1111; }
    Action { HLT <- 1; }
    Cost { Cycle = 1; Stall = 0; Size = 1; }
    Timing { Latency = 1; Usage = 1; }
`

func fpParse(t *testing.T, src string) *Description {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestOpFingerprintStableAcrossParses(t *testing.T) {
	d1 := fpParse(t, fpBase)
	// Formatting-only differences must not change any fingerprint.
	d2 := fpParse(t, Format(d1))
	for fi := range d1.Fields {
		for oi := range d1.Fields[fi].Ops {
			op1, op2 := d1.Fields[fi].Ops[oi], d2.Fields[fi].Ops[oi]
			if OpFingerprint(op1) != OpFingerprint(op2) {
				t.Errorf("fingerprint of %s differs across parse/format round trip", op1.QualName())
			}
		}
	}
	if LayoutFingerprint(d1) != LayoutFingerprint(d2) {
		t.Error("layout fingerprint differs across parse/format round trip")
	}
}

func TestOpFingerprintIsolatesBodyChanges(t *testing.T) {
	d1 := fpParse(t, fpBase)
	// Change one operation's body; only that op's fingerprint may move.
	d2 := fpParse(t, fpBase)
	add := d2.Fields[0].ByName["add"]
	add.Timing.Latency = 2
	d2 = fpParse(t, Format(d2))

	if got, want := OpFingerprint(d2.Fields[0].ByName["add"]), OpFingerprint(d1.Fields[0].ByName["add"]); got == want {
		t.Error("changed op body did not change its fingerprint")
	}
	if got, want := OpFingerprint(d2.Fields[0].ByName["halt"]), OpFingerprint(d1.Fields[0].ByName["halt"]); got != want {
		t.Error("unchanged op's fingerprint moved when a sibling changed")
	}
	if LayoutFingerprint(d1) != LayoutFingerprint(d2) {
		t.Error("op body change moved the layout fingerprint")
	}
}

func TestOpFingerprintCoversReachableNonTerminals(t *testing.T) {
	d1 := fpParse(t, fpBase)
	// Editing a non-terminal an op uses must change that op's fingerprint:
	// the option's Value executes as part of the operation.
	d2 := fpParse(t, fpBase)
	d2.NonTerminals["src"].Options[0].Costs.Cycle = 1
	d2 = fpParse(t, Format(d2))

	if OpFingerprint(d2.Fields[0].ByName["add"]) == OpFingerprint(d1.Fields[0].ByName["add"]) {
		t.Error("non-terminal edit did not change the using op's fingerprint")
	}
	if OpFingerprint(d2.Fields[0].ByName["halt"]) != OpFingerprint(d1.Fields[0].ByName["halt"]) {
		t.Error("non-terminal edit changed an op that does not use it")
	}
}

func TestSynthFingerprintIgnoresEncodingValues(t *testing.T) {
	d1 := fpParse(t, fpBase)
	// Swap the opcode constants of add and halt: an encoding-only change.
	// Decode stays unambiguous (both opcodes remain distinct constants), the
	// canonical text and the per-op fingerprints change, but nothing the
	// hardware model reads moves — signature shapes, RTL, costs and layout
	// are untouched — so the synthesis fingerprint must not move.
	swapped := strings.NewReplacer("0b0001", "0b1111", "0b1111", "0b0001").Replace(fpBase)
	d2 := fpParse(t, swapped)
	if Format(d1) == Format(d2) {
		t.Fatal("opcode swap did not change the canonical text")
	}
	if OpFingerprint(d1.Fields[0].ByName["add"]) == OpFingerprint(d2.Fields[0].ByName["add"]) {
		t.Error("opcode swap did not change the op fingerprint")
	}
	if SynthFingerprint(d1) != SynthFingerprint(d2) {
		t.Error("encoding-only change moved the synthesis fingerprint")
	}
}

func TestSynthFingerprintSeesHardwareInputs(t *testing.T) {
	base := SynthFingerprint(fpParse(t, fpBase))

	cost := fpParse(t, fpBase)
	cost.Fields[0].ByName["add"].Costs.Stall = 2
	if SynthFingerprint(fpParse(t, Format(cost))) == base {
		t.Error("cost change did not move the synthesis fingerprint")
	}

	rtl := fpParse(t, strings.Replace(fpBase, "GPR[d] + s", "GPR[d] - s", 1))
	if SynthFingerprint(rtl) == base {
		t.Error("RTL change did not move the synthesis fingerprint")
	}

	layout := fpParse(t, fpBase)
	layout.StorageByName["DM"].Depth = 32
	if SynthFingerprint(layout) == base {
		t.Error("layout change did not move the synthesis fingerprint")
	}

	// A signature *shape* change (an opcode gaining literal bits) must
	// move it: decode cost counts literal bits.
	shape := fpParse(t, strings.Replace(fpBase, "Encode { I[3:0] = 0b1111; }",
		"Encode { I[3:0] = 0b1111; I[7:4] = 0b0000; }", 1))
	if SynthFingerprint(shape) == base {
		t.Error("signature shape change did not move the synthesis fingerprint")
	}
}

func TestSynthFingerprintStableAcrossParses(t *testing.T) {
	d1 := fpParse(t, fpBase)
	d2 := fpParse(t, Format(d1))
	if SynthFingerprint(d1) != SynthFingerprint(d2) {
		t.Error("synthesis fingerprint differs across parse/format round trip")
	}
}

func TestLayoutFingerprintSeesDepthChanges(t *testing.T) {
	d1 := fpParse(t, fpBase)
	d2 := fpParse(t, fpBase)
	d2.StorageByName["DM"].Depth = 32
	if LayoutFingerprint(d1) == LayoutFingerprint(d2) {
		t.Error("memory depth change did not move the layout fingerprint")
	}
}
