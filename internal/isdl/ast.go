// Package isdl implements the Instruction Set Description Language of the
// paper: a behavioral machine description from which every design-evaluation
// tool in this repository is generated — the assembler and disassembler
// (internal/asm), the cycle-accurate bit-true simulator (internal/xsim), and
// the hardware synthesis model (internal/hgen).
//
// A description has the paper's six sections: format, global definitions
// (tokens and non-terminals of an attributed grammar), storage, instruction
// set (VLIW fields of operations), constraints, and optional architectural
// information. The concrete syntax is documented in docs/ISDL.md; the
// structure and semantics follow §2 of the paper.
package isdl

import (
	"fmt"

	"repro/internal/bitvec"
)

// Pos is a source position within an ISDL description.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Description is a parsed and validated ISDL machine description.
type Description struct {
	// Name is the machine name from the optional "Machine <name>;" header.
	Name string
	// WordWidth is the instruction word width in bits (the Format section).
	WordWidth int

	// Global definitions.
	Tokens       map[string]*Token
	NonTerminals map[string]*NonTerminal

	// Storage, in declaration order, plus a name index and aliases.
	Storage       []*Storage
	StorageByName map[string]*Storage
	Aliases       []*Alias

	// Instruction set: the ordered list of VLIW fields.
	Fields []*Field

	// Constraints that every instruction must satisfy.
	Constraints []*Constraint

	// Info holds the optional architectural-information section verbatim.
	Info map[string]string
}

// MaxSize returns the largest Size cost over all operations: the number of
// instruction words an instruction may occupy.
func (d *Description) MaxSize() int {
	max := 1
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			if op.Costs.Size > max {
				max = op.Costs.Size
			}
		}
	}
	return max
}

// FieldByName returns the named field, or nil.
func (d *Description) FieldByName(name string) *Field {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// TokenKind distinguishes the three token forms of the global-definitions
// section.
type TokenKind int

const (
	// TokRegSet groups syntactically related register names, e.g. R0..R15;
	// the return value is the register index.
	TokRegSet TokenKind = iota
	// TokEnum is an explicit list of name=value alternatives.
	TokEnum
	// TokImm is a numeric literal written directly in assembly.
	TokImm
)

// Token is a syntactic element of the target assembly language with an
// associated return value (§2.1.1).
type Token struct {
	Name string
	Kind TokenKind
	Pos  Pos

	// RegSet form: names are Prefix followed by an index in [Lo, Hi].
	Prefix string
	Lo, Hi int

	// Enum form.
	EnumNames  []string
	EnumValues []uint64

	// Imm form.
	Signed bool

	// RetWidth is the width in bits of the token's return value.
	RetWidth int
}

// ValueFor returns the return value for assembly text s, reporting whether s
// is a valid instance of the token. Imm tokens are handled by the assembler
// (they need numeric parsing and range checks); ValueFor covers RegSet and
// Enum tokens.
func (t *Token) ValueFor(s string) (bitvec.Value, bool) {
	switch t.Kind {
	case TokRegSet:
		if len(s) <= len(t.Prefix) || s[:len(t.Prefix)] != t.Prefix {
			return bitvec.Value{}, false
		}
		n := 0
		for _, c := range s[len(t.Prefix):] {
			if c < '0' || c > '9' {
				return bitvec.Value{}, false
			}
			n = n*10 + int(c-'0')
			if n > t.Hi {
				return bitvec.Value{}, false
			}
		}
		// Reject leading zeros ("R01") so names are canonical.
		if canon := fmt.Sprintf("%s%d", t.Prefix, n); canon != s {
			return bitvec.Value{}, false
		}
		if n < t.Lo || n > t.Hi {
			return bitvec.Value{}, false
		}
		return bitvec.FromUint64(t.RetWidth, uint64(n)), true
	case TokEnum:
		for i, name := range t.EnumNames {
			if name == s {
				return bitvec.FromUint64(t.RetWidth, t.EnumValues[i]), true
			}
		}
		return bitvec.Value{}, false
	default:
		return bitvec.Value{}, false
	}
}

// NameFor returns the assembly text for return value v, reporting whether v
// names a valid instance. For Imm tokens it renders the number (signed or
// unsigned per the declaration).
func (t *Token) NameFor(v bitvec.Value) (string, bool) {
	switch t.Kind {
	case TokRegSet:
		n := int(v.Uint64())
		if n < t.Lo || n > t.Hi {
			return "", false
		}
		return fmt.Sprintf("%s%d", t.Prefix, n), true
	case TokEnum:
		for i, ev := range t.EnumValues {
			if ev == v.Uint64() {
				return t.EnumNames[i], true
			}
		}
		return "", false
	case TokImm:
		if t.Signed {
			return fmt.Sprintf("%d", v.Int64()), true
		}
		return fmt.Sprintf("%d", v.Uint64()), true
	default:
		return "", false
	}
}

// NonTerminal abstracts a common pattern in operation definitions (§2.1.1),
// e.g. an addressing mode. Its return value is a RetWidth-bit bitfield set
// by the chosen option's encode assignments.
type NonTerminal struct {
	Name     string
	Pos      Pos
	RetWidth int
	// ValueWidth is the width of every option's Value expression; the
	// semantic pass verifies the options agree.
	ValueWidth int
	Options    []*Option
	// Lvalue reports whether every option's Value is a storage location,
	// so the non-terminal may appear on the left of "<-".
	Lvalue bool
}

// SynElem is one element of an option's or operation's assembly syntax:
// either a literal string or a reference to a parameter by index.
type SynElem struct {
	Lit   string // non-empty for a literal element
	Param int    // parameter index when Lit is empty
}

// Option is one alternative of a non-terminal. It carries the same six parts
// as an operation definition (per the paper), plus the return-value encode
// assignments and the value expression the parent operation's RTL sees.
type Option struct {
	Index  int
	Pos    Pos
	Syntax []SynElem
	Params []*Param
	// Encode sets bits of the non-terminal's return value (destination R).
	Encode []*BitAssign
	// Value is the expression substituted where the parent references this
	// parameter; it may be a storage location (usable as an lvalue).
	Value Expr
	// SideEffect statements run in the side-effects phase of the cycle.
	SideEffect []Stmt
	Costs      Costs
	Timing     Timing

	// Sig is the option's signature over the non-terminal's return value,
	// built by the semantic pass (Figure 3).
	Sig Signature
}

// Param is a named parameter of an operation or option; its type names a
// token or a non-terminal.
type Param struct {
	Name     string
	TypeName string
	Pos      Pos
	// Resolved by the semantic pass: exactly one of Token/NT is non-nil.
	Token *Token
	NT    *NonTerminal
}

// RetWidth returns the width of the parameter's encoding bits.
func (p *Param) RetWidth() int {
	if p.Token != nil {
		return p.Token.RetWidth
	}
	return p.NT.RetWidth
}

// ValueWidth returns the width of the parameter's value as seen by RTL.
func (p *Param) ValueWidth() int {
	if p.Token != nil {
		return p.Token.RetWidth
	}
	return p.NT.ValueWidth
}

// BitAssign is one bitfield assignment (§2.1.3 part 2): destination bits
// [Hi:Lo] of the instruction word (operations) or return value (options) are
// set to a constant or to (a slice of) a single parameter's value — the
// restriction that makes Axiom 1 hold by construction.
type BitAssign struct {
	Pos    Pos
	Hi, Lo int

	// Exactly one source form:
	Const    bitvec.Value // valid if ConstSet
	ConstSet bool
	Param    int // parameter index, when ConstSet is false
	// Optional slice of the parameter value; PHi = -1 means the whole value.
	PHi, PLo int
}

// Width returns the number of destination bits.
func (b *BitAssign) Width() int { return b.Hi - b.Lo + 1 }

// StorageKind enumerates the eight ISDL storage types (§2.1.2).
type StorageKind int

const (
	StInstructionMemory StorageKind = iota
	StDataMemory
	StRegFile
	StRegister
	StControlRegister
	StMemoryMappedIO
	StProgramCounter
	StStack
)

var storageKindNames = map[StorageKind]string{
	StInstructionMemory: "InstructionMemory",
	StDataMemory:        "DataMemory",
	StRegFile:           "RegFile",
	StRegister:          "Register",
	StControlRegister:   "ControlRegister",
	StMemoryMappedIO:    "MemoryMappedIO",
	StProgramCounter:    "ProgramCounter",
	StStack:             "Stack",
}

func (k StorageKind) String() string { return storageKindNames[k] }

// Addressed reports whether the storage kind has a depth (multiple
// locations).
func (k StorageKind) Addressed() bool {
	switch k {
	case StInstructionMemory, StDataMemory, StRegFile, StMemoryMappedIO, StStack:
		return true
	}
	return false
}

// Storage is one visible storage element (§2.1.2).
type Storage struct {
	Name  string
	Kind  StorageKind
	Pos   Pos
	Width int
	Depth int // locations, for addressed kinds; 1 otherwise
	Base  uint64
}

// Alias names an arbitrary sub-part of the processor state: an element of an
// addressed storage and/or a bit range.
type Alias struct {
	Name    string
	Pos     Pos
	Target  string // storage name
	Indexed bool
	Index   uint64
	Sliced  bool
	Hi, Lo  int
}

// Field is one VLIW field: the set of mutually exclusive operations that map
// to a single functional unit (§2.1.3).
type Field struct {
	Name   string
	Pos    Pos
	Index  int
	Ops    []*Operation
	ByName map[string]*Operation
}

// Costs are the pre-defined ISDL operation costs (§2.1.3 part 5).
type Costs struct {
	Cycle int // cycles in the absence of stalls
	Stall int // additional cycles possible during a pipeline stall
	Size  int // instruction words occupied
}

// Timing holds the pre-defined ISDL timing parameters (§2.1.3 part 6).
type Timing struct {
	Latency int // cycles until the result is available
	Usage   int // cycles until the functional unit is available again
}

// Operation is one operation definition with its six parts (§2.1.3).
type Operation struct {
	Name  string
	Pos   Pos
	Field *Field

	Syntax     []SynElem
	Params     []*Param
	Encode     []*BitAssign
	Action     []Stmt
	SideEffect []Stmt
	Costs      Costs
	Timing     Timing

	// Sig is the operation's signature over the instruction word(s), built
	// by the semantic pass (Figure 3).
	Sig Signature
}

// QualName returns Field.Op, the unambiguous name used by constraints and
// diagnostics.
func (o *Operation) QualName() string { return o.Field.Name + "." + o.Name }

// Constraint is one validity rule (§2.1.4): a boolean expression over
// operation-presence atoms that every instruction must satisfy.
type Constraint struct {
	Pos  Pos
	Expr CExpr
	Text string // original source text for diagnostics
}

// CExpr is a constraint expression node.
type CExpr interface{ cexpr() }

// CAtom is true when the named operation is present in the instruction.
type CAtom struct {
	Field, Op string
	// Resolved by the semantic pass.
	ResolvedField *Field
	ResolvedOp    *Operation
}

// CNot negates a constraint expression.
type CNot struct{ X CExpr }

// CBin combines two constraint expressions with "&", "|" or "->".
type CBin struct {
	Op   string
	X, Y CExpr
}

func (*CAtom) cexpr() {}
func (*CNot) cexpr()  {}
func (*CBin) cexpr()  {}

// Eval evaluates a constraint expression over the set of selected operations.
func (c *Constraint) Eval(selected map[*Operation]bool) bool {
	return cEval(c.Expr, selected)
}

func cEval(e CExpr, sel map[*Operation]bool) bool {
	switch e := e.(type) {
	case *CAtom:
		return sel[e.ResolvedOp]
	case *CNot:
		return !cEval(e.X, sel)
	case *CBin:
		x, y := cEval(e.X, sel), cEval(e.Y, sel)
		switch e.Op {
		case "&":
			return x && y
		case "|":
			return x || y
		case "->":
			return !x || y
		}
	}
	panic("isdl: bad constraint expression")
}
