package isdl

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a description back to ISDL source. The architecture
// synthesis system of the paper emits ISDL descriptions (§4.1); the
// exploration driver uses Format to materialize mutated candidates, and
// Parse(Format(d)) re-validates them from scratch. Format(Parse(Format(d)))
// is a fixpoint (covered by tests).
func Format(d *Description) string {
	var sb strings.Builder
	if d.Name != "" {
		fmt.Fprintf(&sb, "Machine %s;\n", d.Name)
	}
	fmt.Fprintf(&sb, "Format %d;\n\n", d.WordWidth)

	sb.WriteString("Section Global_Definitions\n\n")
	for _, name := range sortedKeys(d.Tokens) {
		formatToken(&sb, d.Tokens[name])
	}
	sb.WriteByte('\n')
	// Non-terminals in dependency-safe (name) order; Parse resolves them
	// topologically so source order is free.
	for _, name := range sortedKeysNT(d.NonTerminals) {
		formatNT(&sb, d.NonTerminals[name])
	}

	sb.WriteString("Section Storage\n\n")
	for _, st := range d.Storage {
		fmt.Fprintf(&sb, "%s %s width %d", st.Kind, st.Name, st.Width)
		if st.Kind.Addressed() {
			fmt.Fprintf(&sb, " depth %d", st.Depth)
		}
		if st.Base != 0 {
			fmt.Fprintf(&sb, " base %d", st.Base)
		}
		sb.WriteString(";\n")
	}
	for _, a := range d.Aliases {
		fmt.Fprintf(&sb, "Alias %s = %s", a.Name, a.Target)
		if a.Indexed {
			fmt.Fprintf(&sb, "[%d]", a.Index)
		}
		if a.Sliced {
			fmt.Fprintf(&sb, "[%d:%d]", a.Hi, a.Lo)
		}
		sb.WriteString(";\n")
	}

	sb.WriteString("\nSection Instruction_Set\n")
	for _, f := range d.Fields {
		fmt.Fprintf(&sb, "\nField %s:\n", f.Name)
		for _, op := range f.Ops {
			formatOp(&sb, op)
		}
	}

	if len(d.Constraints) > 0 {
		sb.WriteString("\nSection Constraints\n\n")
		for _, c := range d.Constraints {
			fmt.Fprintf(&sb, "constraint %s;\n", c.Text)
		}
	}

	if len(d.Info) > 0 {
		sb.WriteString("\nSection Architectural_Information\n\n")
		for _, k := range sortedKeysStr(d.Info) {
			v := d.Info[k]
			if strings.ContainsAny(v, " \t") || v == "" {
				fmt.Fprintf(&sb, "%s = \"%s\";\n", k, v)
			} else {
				fmt.Fprintf(&sb, "%s = %s;\n", k, v)
			}
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]*Token) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysNT(m map[string]*NonTerminal) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysStr(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func formatToken(sb *strings.Builder, t *Token) {
	switch t.Kind {
	case TokRegSet:
		fmt.Fprintf(sb, "Token %s \"%s\" [%d..%d];\n", t.Name, t.Prefix, t.Lo, t.Hi)
	case TokEnum:
		fmt.Fprintf(sb, "Token %s enum { ", t.Name)
		for i := range t.EnumNames {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "\"%s\" = %d", t.EnumNames[i], t.EnumValues[i])
		}
		sb.WriteString(" };\n")
	case TokImm:
		sign := "unsigned"
		if t.Signed {
			sign = "signed"
		}
		fmt.Fprintf(sb, "Token %s imm %s %d;\n", t.Name, sign, t.RetWidth)
	}
}

func formatNT(sb *strings.Builder, nt *NonTerminal) {
	fmt.Fprintf(sb, "Non_Terminal %s width %d :\n", nt.Name, nt.RetWidth)
	for _, opt := range nt.Options {
		sb.WriteString("  option")
		formatSyntax(sb, opt.Syntax, opt.Params)
		sb.WriteByte('\n')
		formatEncode(sb, "R", opt.Encode, opt.Params)
		fmt.Fprintf(sb, "    Value { %s }\n", opt.Value)
		formatStmts(sb, "SideEffect", opt.SideEffect)
		formatCosts(sb, opt.Costs, opt.Timing, true)
	}
	sb.WriteString(";\n\n")
}

func formatOp(sb *strings.Builder, op *Operation) {
	fmt.Fprintf(sb, "  op %s", op.Name)
	formatSyntax(sb, op.Syntax, op.Params)
	sb.WriteByte('\n')
	formatEncode(sb, "I", op.Encode, op.Params)
	formatStmts(sb, "Action", op.Action)
	formatStmts(sb, "SideEffect", op.SideEffect)
	formatCosts(sb, op.Costs, op.Timing, false)
}

func formatSyntax(sb *strings.Builder, syn []SynElem, params []*Param) {
	for _, el := range syn {
		if el.Lit != "" {
			if el.Lit == "," {
				sb.WriteString(" ,")
			} else {
				fmt.Fprintf(sb, " \"%s\"", el.Lit)
			}
			continue
		}
		p := params[el.Param]
		fmt.Fprintf(sb, " (%s: %s)", p.Name, p.TypeName)
	}
}

func formatEncode(sb *strings.Builder, dst string, encode []*BitAssign, params []*Param) {
	if len(encode) == 0 {
		return
	}
	sb.WriteString("    Encode { ")
	for _, ba := range encode {
		if ba.Hi == ba.Lo {
			fmt.Fprintf(sb, "%s[%d] = ", dst, ba.Hi)
		} else {
			fmt.Fprintf(sb, "%s[%d:%d] = ", dst, ba.Hi, ba.Lo)
		}
		if ba.ConstSet {
			fmt.Fprintf(sb, "0b%s; ", ba.Const.BitString())
		} else {
			sb.WriteString(params[ba.Param].Name)
			if ba.PHi >= 0 {
				fmt.Fprintf(sb, "[%d:%d]", ba.PHi, ba.PLo)
			}
			sb.WriteString("; ")
		}
	}
	sb.WriteString("}\n")
}

func formatStmts(sb *strings.Builder, part string, stmts []Stmt) {
	if len(stmts) == 0 {
		return
	}
	fmt.Fprintf(sb, "    %s { ", part)
	for _, s := range stmts {
		sb.WriteString(s.String())
		sb.WriteByte(' ')
	}
	sb.WriteString("}\n")
}

func formatCosts(sb *strings.Builder, c Costs, t Timing, isOption bool) {
	if isOption {
		if c != (Costs{}) {
			fmt.Fprintf(sb, "    Cost { Cycle = %d; Stall = %d; Size = %d; }\n", c.Cycle, c.Stall, c.Size)
		}
		if t != (Timing{}) {
			fmt.Fprintf(sb, "    Timing { Latency = %d; Usage = %d; }\n", t.Latency, t.Usage)
		}
		return
	}
	fmt.Fprintf(sb, "    Cost { Cycle = %d; Stall = %d; Size = %d; }\n", c.Cycle, c.Stall, c.Size)
	fmt.Fprintf(sb, "    Timing { Latency = %d; Usage = %d; }\n", t.Latency, t.Usage)
}
