package isdl

import "repro/internal/bitvec"

// RTL expression and statement parsing. The grammar is a conventional
// C-flavoured expression language over storage references, parameters and
// builtin functions; "<-" is the register-transfer assignment of the paper's
// RTL-type statements.

// binPrec returns the binding power of a binary operator, or 0 if the token
// is not a binary operator. Higher binds tighter.
func binPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "|":
		return 3
	case "^":
		return 4
	case "&":
		return 5
	case "==", "!=":
		return 6
	case "<", "<=", ">", ">=":
		return 7
	case "<<", ">>":
		return 8
	case "+", "-":
		return 9
	case "*", "/", "%":
		return 10
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.Kind != lexPunct {
			return lhs, nil
		}
		prec := binPrec(p.tok.Text)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.Text
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{At: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.Kind == lexPunct {
		switch p.tok.Text {
		case "-", "~", "!":
			op := p.tok.Text
			pos := p.tok.Pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// Fold "-literal" into a negative unsized literal so widths
			// infer naturally.
			if lit, ok := x.(*Lit); ok && !lit.Sized && op == "-" {
				lit.Neg = !lit.Neg
				return lit, nil
			}
			return &Unary{At: pos, Op: op, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("[") {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ok, err := p.accept(lexPunct, ":"); err != nil {
			return nil, err
		} else if ok {
			// Static bit slice: both bounds must be unsized literals.
			hiLit, okH := first.(*Lit)
			lo, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if !okH || hiLit.Sized {
				return nil, &lexError{pos, "bit-slice bounds must be plain decimal constants"}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			hi := int(hiLit.Dec)
			if hi < lo {
				return nil, &lexError{pos, "bit slice has hi < lo"}
			}
			e = &SliceE{At: pos, X: e, Hi: hi, Lo: lo}
			continue
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		ref, ok := e.(*Ref)
		if !ok {
			return nil, &lexError{pos, "only a storage name can be indexed"}
		}
		e = &Index{At: ref.At, Name: ref.Name, Idx: first}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case lexNumber:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		lit := &Lit{At: pos}
		if t.NumWidth > 0 {
			lit.Sized = true
			lit.Val = fromSized(t)
		} else {
			lit.Dec = t.NumVal
		}
		return lit, nil
	case lexIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &Call{At: pos, Fn: name}
			if !p.atPunct(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if ok, err := p.accept(lexPunct, ","); err != nil {
						return nil, err
					} else if !ok {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ref{At: pos, Name: name}, nil
	case lexPunct:
		if p.tok.Text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression, found %q", p.tok.Text)
}

func fromSized(t lexToken) bitvec.Value {
	return bitvec.FromUint64(t.NumWidth, t.NumVal)
}

// parseStmts parses statements until the closing brace (left for the caller
// to consume).
func (p *parser) parseStmts() ([]Stmt, error) {
	var out []Stmt
	for !p.atPunct("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	if p.atIdent("if") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		then, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		st := &If{At: pos, Cond: cond, Then: then}
		if ok, err := p.accept(lexIdent, "else"); err != nil {
			return nil, err
		} else if ok {
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			if st.Else, err = p.parseStmts(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		}
		return st, nil
	}

	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if ok, err := p.accept(lexPunct, "<-"); err != nil {
		return nil, err
	} else if ok {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Assign{At: pos, LHS: lhs, RHS: rhs}, nil
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if _, ok := lhs.(*Call); !ok {
		return nil, &lexError{pos, "expression statement must be a builtin call (push/pop)"}
	}
	return &ExprStmt{At: pos, X: lhs}, nil
}
