package isdl

import (
	"fmt"

	"repro/internal/bitvec"
)

// Parse parses and semantically validates an ISDL description. On success
// the returned Description is fully resolved: parameter types, storage
// references, expression widths and constraint atoms are all bound.
func Parse(src string) (*Description, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	d, err := p.parseDescription()
	if err != nil {
		return nil, err
	}
	if err := analyze(d); err != nil {
		return nil, err
	}
	return d, nil
}

type parser struct {
	lx  *lexer
	tok lexToken
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &lexError{p.tok.Pos, fmt.Sprintf(format, args...)}
}

func (p *parser) at(kind lexKind, text string) bool {
	return p.tok.Kind == kind && (text == "" || p.tok.Text == text)
}

func (p *parser) atIdent(text string) bool { return p.at(lexIdent, text) }
func (p *parser) atPunct(text string) bool { return p.at(lexPunct, text) }

// accept consumes the current token if it matches.
func (p *parser) accept(kind lexKind, text string) (bool, error) {
	if p.at(kind, text) {
		return true, p.advance()
	}
	return false, nil
}

// expect consumes a required token.
func (p *parser) expect(kind lexKind, text string) (lexToken, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[lexKind]string{lexIdent: "identifier", lexNumber: "number", lexString: "string"}[kind]
		}
		return lexToken{}, p.errf("expected %q, found %q", want, p.tok.Text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) expectIdent() (lexToken, error) { return p.expect(lexIdent, "") }

func (p *parser) expectNumber() (lexToken, error) {
	if p.tok.Kind != lexNumber {
		return lexToken{}, p.errf("expected number, found %q", p.tok.Text)
	}
	t := p.tok
	return t, p.advance()
}

// expectInt consumes an unsized non-negative decimal and returns it as int.
func (p *parser) expectInt() (int, error) {
	t, err := p.expectNumber()
	if err != nil {
		return 0, err
	}
	if t.NumVal > 1<<31 {
		return 0, &lexError{t.Pos, "number out of range"}
	}
	return int(t.NumVal), nil
}

func (p *parser) expectPunct(text string) error {
	_, err := p.expect(lexPunct, text)
	return err
}

func (p *parser) parseDescription() (*Description, error) {
	d := &Description{
		Tokens:        map[string]*Token{},
		NonTerminals:  map[string]*NonTerminal{},
		StorageByName: map[string]*Storage{},
		Info:          map[string]string{},
	}

	if ok, err := p.accept(lexIdent, "Machine"); err != nil {
		return nil, err
	} else if ok {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d.Name = t.Text
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}

	if _, err := p.expect(lexIdent, "Format"); err != nil {
		return nil, err
	}
	w, err := p.expectInt()
	if err != nil {
		return nil, err
	}
	if w <= 0 || w > 1024 {
		return nil, p.errf("instruction word width %d out of range", w)
	}
	d.WordWidth = w
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	for !p.at(lexEOF, "") {
		if _, err := p.expect(lexIdent, "Section"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch name.Text {
		case "Global_Definitions":
			err = p.parseGlobalDefs(d)
		case "Storage":
			err = p.parseStorage(d)
		case "Instruction_Set":
			err = p.parseInstructionSet(d)
		case "Constraints":
			err = p.parseConstraints(d)
		case "Architectural_Information":
			err = p.parseInfo(d)
		default:
			return nil, &lexError{name.Pos, fmt.Sprintf("unknown section %q", name.Text)}
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// atSectionEnd reports whether the current token starts a new section or is
// EOF.
func (p *parser) atSectionEnd() bool {
	return p.at(lexEOF, "") || p.atIdent("Section")
}

func (p *parser) parseGlobalDefs(d *Description) error {
	for !p.atSectionEnd() {
		switch {
		case p.atIdent("Token"):
			if err := p.parseToken(d); err != nil {
				return err
			}
		case p.atIdent("Non_Terminal"):
			if err := p.parseNonTerminal(d); err != nil {
				return err
			}
		default:
			return p.errf("expected Token or Non_Terminal, found %q", p.tok.Text)
		}
	}
	return nil
}

func (p *parser) parseToken(d *Description) error {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // Token
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	t := &Token{Name: nameTok.Text, Pos: pos}
	switch {
	case p.tok.Kind == lexString:
		// Register-set form: Token GPR "R" [0..15];
		t.Kind = TokRegSet
		t.Prefix = p.tok.Text
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectPunct("["); err != nil {
			return err
		}
		if t.Lo, err = p.expectInt(); err != nil {
			return err
		}
		if err := p.expectPunct(".."); err != nil {
			return err
		}
		if t.Hi, err = p.expectInt(); err != nil {
			return err
		}
		if err := p.expectPunct("]"); err != nil {
			return err
		}
		if t.Hi < t.Lo {
			return &lexError{pos, fmt.Sprintf("token %s: empty range [%d..%d]", t.Name, t.Lo, t.Hi)}
		}
		t.RetWidth = bitsFor(uint64(t.Hi))
	case p.atIdent("enum"):
		t.Kind = TokEnum
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		var maxV uint64
		for {
			s, err := p.expect(lexString, "")
			if err != nil {
				return err
			}
			if err := p.expectPunct("="); err != nil {
				return err
			}
			n, err := p.expectNumber()
			if err != nil {
				return err
			}
			t.EnumNames = append(t.EnumNames, s.Text)
			t.EnumValues = append(t.EnumValues, n.NumVal)
			if n.NumVal > maxV {
				maxV = n.NumVal
			}
			if ok, err := p.accept(lexPunct, ","); err != nil {
				return err
			} else if !ok {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return err
		}
		t.RetWidth = bitsFor(maxV)
	case p.atIdent("imm"):
		t.Kind = TokImm
		if err := p.advance(); err != nil {
			return err
		}
		switch {
		case p.atIdent("signed"):
			t.Signed = true
		case p.atIdent("unsigned"):
			t.Signed = false
		default:
			return p.errf("expected signed or unsigned, found %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return err
		}
		if t.RetWidth, err = p.expectInt(); err != nil {
			return err
		}
		if t.RetWidth <= 0 || t.RetWidth > 64 {
			return &lexError{pos, fmt.Sprintf("token %s: immediate width %d out of range", t.Name, t.RetWidth)}
		}
	default:
		return p.errf("expected token specification, found %q", p.tok.Text)
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if _, dup := d.Tokens[t.Name]; dup {
		return &lexError{pos, fmt.Sprintf("duplicate token %s", t.Name)}
	}
	d.Tokens[t.Name] = t
	return nil
}

// bitsFor returns the bits needed to represent max (at least 1).
func bitsFor(max uint64) int {
	n := 1
	for max > 1 {
		max >>= 1
		n++
	}
	return n
}

func (p *parser) parseNonTerminal(d *Description) error {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // Non_Terminal
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	nt := &NonTerminal{Name: nameTok.Text, Pos: pos}
	if _, err := p.expect(lexIdent, "width"); err != nil {
		return err
	}
	if nt.RetWidth, err = p.expectInt(); err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	for p.atIdent("option") {
		opt, err := p.parseOption(len(nt.Options))
		if err != nil {
			return err
		}
		nt.Options = append(nt.Options, opt)
	}
	if len(nt.Options) == 0 {
		return &lexError{pos, fmt.Sprintf("non-terminal %s has no options", nt.Name)}
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if _, dup := d.NonTerminals[nt.Name]; dup {
		return &lexError{pos, fmt.Sprintf("duplicate non-terminal %s", nt.Name)}
	}
	d.NonTerminals[nt.Name] = nt
	return nil
}

// parseSyntax parses a sequence of syntax elements: string literals, ","
// sugar, and parenthesized parameter declarations. It stops at the first
// token that cannot start a syntax element.
func (p *parser) parseSyntax() ([]SynElem, []*Param, error) {
	var syn []SynElem
	var params []*Param
	for {
		switch {
		case p.tok.Kind == lexString:
			syn = append(syn, SynElem{Lit: p.tok.Text})
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		case p.atPunct(","):
			syn = append(syn, SynElem{Lit: ","})
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		case p.atPunct("("):
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			nameTok, err := p.expectIdent()
			if err != nil {
				return nil, nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, nil, err
			}
			typeTok, err := p.expectIdent()
			if err != nil {
				return nil, nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, nil, err
			}
			syn = append(syn, SynElem{Param: len(params)})
			params = append(params, &Param{Name: nameTok.Text, TypeName: typeTok.Text, Pos: nameTok.Pos})
		default:
			return syn, params, nil
		}
	}
}

// partNames are the block keywords of an operation/option body.
var partNames = map[string]bool{
	"Encode": true, "Action": true, "SideEffect": true,
	"Cost": true, "Timing": true, "Value": true,
}

func (p *parser) parseOption(index int) (*Option, error) {
	opt := &Option{Index: index, Pos: p.tok.Pos, Costs: Costs{Size: 0}, Timing: Timing{}}
	if err := p.advance(); err != nil { // option
		return nil, err
	}
	var err error
	opt.Syntax, opt.Params, err = p.parseSyntax()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == lexIdent && partNames[p.tok.Text] {
		part := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		switch part {
		case "Encode":
			if opt.Encode, err = p.parseBitAssigns("R", opt.Params); err != nil {
				return nil, err
			}
		case "Value":
			if opt.Value, err = p.parseExpr(); err != nil {
				return nil, err
			}
		case "SideEffect":
			if opt.SideEffect, err = p.parseStmts(); err != nil {
				return nil, err
			}
		case "Cost":
			if err := p.parseCosts(&opt.Costs); err != nil {
				return nil, err
			}
		case "Timing":
			if err := p.parseTiming(&opt.Timing); err != nil {
				return nil, err
			}
		case "Action":
			return nil, p.errf("options use Value and SideEffect, not Action")
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
	}
	return opt, nil
}

// parseBitAssigns parses "dst[h:l] = src;" lines until the closing brace.
// dstName is "I" for operations and "R" for option return values.
func (p *parser) parseBitAssigns(dstName string, params []*Param) ([]*BitAssign, error) {
	var out []*BitAssign
	for !p.atPunct("}") {
		pos := p.tok.Pos
		dst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if dst.Text != dstName {
			return nil, &lexError{dst.Pos, fmt.Sprintf("bitfield destination must be %s, found %s", dstName, dst.Text)}
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		hi, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		lo := hi
		if ok, err := p.accept(lexPunct, ":"); err != nil {
			return nil, err
		} else if ok {
			if lo, err = p.expectInt(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, &lexError{pos, fmt.Sprintf("bitfield [%d:%d] has hi < lo", hi, lo)}
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		ba := &BitAssign{Pos: pos, Hi: hi, Lo: lo, PHi: -1, PLo: -1}
		switch {
		case p.tok.Kind == lexNumber:
			if p.tok.NumWidth == 0 {
				return nil, p.errf("bitfield constants must be sized (use 0b… or n'h…)")
			}
			if p.tok.NumWidth != ba.Width() {
				return nil, p.errf("constant width %d does not match bitfield width %d", p.tok.NumWidth, ba.Width())
			}
			ba.Const = bitvec.FromUint64(p.tok.NumWidth, p.tok.NumVal)
			ba.ConstSet = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.Kind == lexIdent:
			name := p.tok.Text
			idx := -1
			for i, prm := range params {
				if prm.Name == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, p.errf("bitfield source %q is not a parameter", name)
			}
			ba.Param = idx
			if err := p.advance(); err != nil {
				return nil, err
			}
			if ok, err := p.accept(lexPunct, "["); err != nil {
				return nil, err
			} else if ok {
				if ba.PHi, err = p.expectInt(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				if ba.PLo, err = p.expectInt(); err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				if ba.PHi < ba.PLo {
					return nil, &lexError{pos, "parameter slice has hi < lo"}
				}
			}
		default:
			return nil, p.errf("expected constant or parameter, found %q", p.tok.Text)
		}
		out = append(out, ba)
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *parser) parseCosts(c *Costs) error {
	return p.parseKeyVals(map[string]*int{"Cycle": &c.Cycle, "Stall": &c.Stall, "Size": &c.Size})
}

func (p *parser) parseTiming(t *Timing) error {
	return p.parseKeyVals(map[string]*int{"Latency": &t.Latency, "Usage": &t.Usage})
}

func (p *parser) parseKeyVals(dst map[string]*int) error {
	for !p.atPunct("}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		slot, ok := dst[key.Text]
		if !ok {
			return &lexError{key.Pos, fmt.Sprintf("unknown cost/timing parameter %q", key.Text)}
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		v, err := p.expectInt()
		if err != nil {
			return err
		}
		*slot = v
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseStorage(d *Description) error {
	kinds := map[string]StorageKind{
		"InstructionMemory": StInstructionMemory,
		"DataMemory":        StDataMemory,
		"RegFile":           StRegFile,
		"Register":          StRegister,
		"ControlRegister":   StControlRegister,
		"MemoryMappedIO":    StMemoryMappedIO,
		"ProgramCounter":    StProgramCounter,
		"Stack":             StStack,
	}
	for !p.atSectionEnd() {
		if p.atIdent("Alias") {
			if err := p.parseAlias(d); err != nil {
				return err
			}
			continue
		}
		kindTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		kind, ok := kinds[kindTok.Text]
		if !ok {
			return &lexError{kindTok.Pos, fmt.Sprintf("unknown storage kind %q", kindTok.Text)}
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		st := &Storage{Name: nameTok.Text, Kind: kind, Pos: kindTok.Pos, Depth: 1}
		if _, err := p.expect(lexIdent, "width"); err != nil {
			return err
		}
		if st.Width, err = p.expectInt(); err != nil {
			return err
		}
		if ok, err := p.accept(lexIdent, "depth"); err != nil {
			return err
		} else if ok {
			if st.Depth, err = p.expectInt(); err != nil {
				return err
			}
		}
		if ok, err := p.accept(lexIdent, "base"); err != nil {
			return err
		} else if ok {
			n, err := p.expectNumber()
			if err != nil {
				return err
			}
			st.Base = n.NumVal
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		if _, dup := d.StorageByName[st.Name]; dup {
			return &lexError{st.Pos, fmt.Sprintf("duplicate storage %s", st.Name)}
		}
		d.Storage = append(d.Storage, st)
		d.StorageByName[st.Name] = st
	}
	return nil
}

func (p *parser) parseAlias(d *Description) error {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // Alias
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	target, err := p.expectIdent()
	if err != nil {
		return err
	}
	a := &Alias{Name: nameTok.Text, Pos: pos, Target: target.Text, Hi: -1, Lo: -1}
	// Up to two bracket suffixes: [index] and/or [hi:lo].
	for i := 0; i < 2; i++ {
		ok, err := p.accept(lexPunct, "[")
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		first, err := p.expectInt()
		if err != nil {
			return err
		}
		if ok, err := p.accept(lexPunct, ":"); err != nil {
			return err
		} else if ok {
			lo, err := p.expectInt()
			if err != nil {
				return err
			}
			if a.Sliced {
				return &lexError{pos, "alias has multiple bit ranges"}
			}
			a.Sliced, a.Hi, a.Lo = true, first, lo
		} else {
			if a.Indexed || a.Sliced {
				return &lexError{pos, "alias index must precede the bit range"}
			}
			a.Indexed, a.Index = true, uint64(first)
		}
		if err := p.expectPunct("]"); err != nil {
			return err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	d.Aliases = append(d.Aliases, a)
	return nil
}

func (p *parser) parseInstructionSet(d *Description) error {
	for !p.atSectionEnd() {
		if _, err := p.expect(lexIdent, "Field"); err != nil {
			return err
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		f := &Field{Name: nameTok.Text, Pos: nameTok.Pos, Index: len(d.Fields), ByName: map[string]*Operation{}}
		for p.atIdent("op") {
			op, err := p.parseOperation(f)
			if err != nil {
				return err
			}
			if _, dup := f.ByName[op.Name]; dup {
				return &lexError{op.Pos, fmt.Sprintf("duplicate operation %s in field %s", op.Name, f.Name)}
			}
			f.Ops = append(f.Ops, op)
			f.ByName[op.Name] = op
		}
		if len(f.Ops) == 0 {
			return &lexError{f.Pos, fmt.Sprintf("field %s has no operations", f.Name)}
		}
		d.Fields = append(d.Fields, f)
	}
	return nil
}

func (p *parser) parseOperation(f *Field) (*Operation, error) {
	op := &Operation{Field: f, Pos: p.tok.Pos, Costs: Costs{Cycle: 1, Size: 1}, Timing: Timing{Latency: 1, Usage: 1}}
	if err := p.advance(); err != nil { // op
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	op.Name = nameTok.Text
	if op.Syntax, op.Params, err = p.parseSyntax(); err != nil {
		return nil, err
	}
	for p.tok.Kind == lexIdent && partNames[p.tok.Text] {
		part := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		switch part {
		case "Encode":
			if op.Encode, err = p.parseBitAssigns("I", op.Params); err != nil {
				return nil, err
			}
		case "Action":
			if op.Action, err = p.parseStmts(); err != nil {
				return nil, err
			}
		case "SideEffect":
			if op.SideEffect, err = p.parseStmts(); err != nil {
				return nil, err
			}
		case "Cost":
			if err := p.parseCosts(&op.Costs); err != nil {
				return nil, err
			}
		case "Timing":
			if err := p.parseTiming(&op.Timing); err != nil {
				return nil, err
			}
		case "Value":
			return nil, p.errf("operations use Action, not Value")
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
	}
	return op, nil
}

func (p *parser) parseConstraints(d *Description) error {
	for !p.atSectionEnd() {
		pos := p.tok.Pos
		var negate bool
		switch {
		case p.atIdent("constraint"):
		case p.atIdent("never"):
			negate = true
		default:
			return p.errf("expected constraint or never, found %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return err
		}
		e, err := p.parseCExpr(0)
		if err != nil {
			return err
		}
		if negate {
			e = &CNot{X: e}
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		d.Constraints = append(d.Constraints, &Constraint{Pos: pos, Expr: e, Text: cexprString(e)})
	}
	return nil
}

// Constraint-expression precedence: -> (1) < | (2) < & (3) < ! (4).
func (p *parser) parseCExpr(minPrec int) (CExpr, error) {
	var lhs CExpr
	switch {
	case p.atPunct("!"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseCExpr(4)
		if err != nil {
			return nil, err
		}
		lhs = &CNot{X: x}
	case p.atPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseCExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		lhs = x
	case p.tok.Kind == lexIdent:
		fieldTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		opTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		lhs = &CAtom{Field: fieldTok.Text, Op: opTok.Text}
	default:
		return nil, p.errf("expected constraint expression, found %q", p.tok.Text)
	}

	for {
		var prec int
		var op string
		switch {
		case p.atPunct("&"):
			prec, op = 3, "&"
		case p.atPunct("|"):
			prec, op = 2, "|"
		case p.atPunct("->"):
			prec, op = 1, "->"
		default:
			return lhs, nil
		}
		if prec < minPrec {
			return lhs, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseCExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &CBin{Op: op, X: lhs, Y: rhs}
	}
}

func cexprString(e CExpr) string {
	switch e := e.(type) {
	case *CAtom:
		return e.Field + "." + e.Op
	case *CNot:
		return "!" + cexprString(e.X)
	case *CBin:
		return "(" + cexprString(e.X) + " " + e.Op + " " + cexprString(e.Y) + ")"
	}
	return "?"
}

func (p *parser) parseInfo(d *Description) error {
	for !p.atSectionEnd() {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		var val string
		switch p.tok.Kind {
		case lexString, lexNumber, lexIdent:
			val = p.tok.Text
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return p.errf("expected value, found %q", p.tok.Text)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		d.Info[key.Text] = val
	}
	return nil
}
