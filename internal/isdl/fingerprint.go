package isdl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Content fingerprints. The exploration loop mutates one operation at a
// time, so neighbouring candidate descriptions share almost every
// definition; per-definition fingerprints let the toolchain caches
// (compiled-op closures in xsim, stage artifacts in core) key by exactly
// the content a generated artifact depends on, instead of the whole
// description. A fingerprint is a SHA-256 over canonical text (the same
// rendering Format uses), so formatting differences never split equal
// content and any textual change to a definition changes its fingerprint.

// Fingerprint is a content hash of one definition or section.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// FormatOp renders the canonical text of a single operation definition —
// the same fragment Format emits inside the operation's field.
func FormatOp(op *Operation) string {
	var sb strings.Builder
	formatOp(&sb, op)
	return sb.String()
}

// FormatNonTerminal renders the canonical text of one non-terminal
// definition, as Format emits it.
func FormatNonTerminal(nt *NonTerminal) string {
	var sb strings.Builder
	formatNT(&sb, nt)
	return sb.String()
}

// OpFingerprint hashes everything the semantics of one operation depend
// on besides the machine state layout: the operation's own canonical text
// (syntax, encoding, RTL, costs, timing) plus the canonical definition of
// every non-terminal transitively reachable from its parameters (an
// option's Value and SideEffect execute as part of the operation). Token
// definitions are excluded on purpose: they only shape decoding, and
// consumers key decoded argument values separately.
func OpFingerprint(op *Operation) Fingerprint {
	h := sha256.New()
	writeLenPrefixed(h, FormatOp(op))
	nts := map[string]*NonTerminal{}
	collectNTs(op.Params, nts)
	names := make([]string, 0, len(nts))
	for n := range nts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeLenPrefixed(h, FormatNonTerminal(nts[n]))
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// collectNTs gathers the non-terminals reachable from a parameter list.
func collectNTs(params []*Param, out map[string]*NonTerminal) {
	for _, p := range params {
		if p.NT == nil || out[p.NT.Name] != nil {
			continue
		}
		out[p.NT.Name] = p.NT
		for _, opt := range p.NT.Options {
			collectNTs(opt.Params, out)
		}
	}
}

// LayoutFingerprint hashes the state layout of a description: the storage
// and alias declarations in order, exactly as Format renders them. Two
// descriptions with equal layout fingerprints resolve every storage and
// alias reference to the same index and element geometry, so compiled
// artifacts that address state positionally transfer between them.
func LayoutFingerprint(d *Description) Fingerprint {
	h := sha256.New()
	var sb strings.Builder
	for _, st := range d.Storage {
		sb.Reset()
		sb.WriteString(st.Kind.String())
		sb.WriteByte(' ')
		sb.WriteString(st.Name)
		writeInt(&sb, st.Width)
		writeInt(&sb, st.Depth)
		writeInt(&sb, int(st.Base))
		writeLenPrefixed(h, sb.String())
	}
	for _, a := range d.Aliases {
		sb.Reset()
		sb.WriteString("alias ")
		sb.WriteString(a.Name)
		sb.WriteByte('=')
		sb.WriteString(a.Target)
		if a.Indexed {
			writeInt(&sb, int(a.Index))
		}
		if a.Sliced {
			writeInt(&sb, a.Hi)
			writeInt(&sb, a.Lo)
		}
		writeLenPrefixed(h, sb.String())
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// SynthFingerprint hashes exactly the parts of a description the hardware
// model (internal/hgen, without Verilog emission) reads: the state layout,
// every operation's and option's RTL, costs, timing and parameter types,
// the *shape* of every signature (bit kinds — which positions are constant,
// parameter or don't-care), token definitions (they set parameter widths),
// and the constraint section (it enables cross-field sharing). The constant
// bit values of an encoding are deliberately excluded: decode-logic cost
// depends only on how many literal bits a signature has, not on their
// values, so two descriptions that differ only in opcode assignments
// synthesize to the same cost model and may share a Synthesize-stage
// artifact. (Verilog emission does embed the opcode values; callers that
// emit Verilog must key by the full canonical text instead.)
func SynthFingerprint(d *Description) Fingerprint {
	h := sha256.New()
	var sb strings.Builder
	writeLenPrefixed(h, "synth")
	sb.WriteString(d.Name)
	writeInt(&sb, d.WordWidth)
	writeLenPrefixed(h, sb.String())

	// Tokens: canonical text (token kinds and widths size the decoded
	// parameter values RTL expressions compute with).
	for _, name := range sortedKeys(d.Tokens) {
		sb.Reset()
		formatToken(&sb, d.Tokens[name])
		writeLenPrefixed(h, sb.String())
	}

	// Non-terminals: every option's signature shape, value expression,
	// side effects, costs, timing and parameter types. hgen consults all
	// non-terminals (decode terms), not just reachable ones.
	for _, name := range sortedKeysNT(d.NonTerminals) {
		nt := d.NonTerminals[name]
		sb.Reset()
		sb.WriteString(nt.Name)
		writeInt(&sb, nt.RetWidth)
		for _, opt := range nt.Options {
			sb.WriteString("\noption")
			writeParamsAndShape(&sb, opt.Params, &opt.Sig)
			fmt.Fprintf(&sb, " Value { %s }", opt.Value)
			formatStmts(&sb, "SideEffect", opt.SideEffect)
			formatCosts(&sb, opt.Costs, opt.Timing, true)
		}
		writeLenPrefixed(h, sb.String())
	}

	// State layout: storage and aliases.
	lf := LayoutFingerprint(d)
	writeLenPrefixed(h, string(lf[:]))

	// Instruction set: per field, per operation — name, parameter types,
	// signature shape, RTL, costs, timing. Declaration order is kept (node
	// extraction and clique cover follow it).
	for _, f := range d.Fields {
		sb.Reset()
		sb.WriteString("field ")
		sb.WriteString(f.Name)
		writeLenPrefixed(h, sb.String())
		for _, op := range f.Ops {
			sb.Reset()
			sb.WriteString(op.Name)
			writeParamsAndShape(&sb, op.Params, &op.Sig)
			sb.WriteByte('\n')
			formatStmts(&sb, "Action", op.Action)
			formatStmts(&sb, "SideEffect", op.SideEffect)
			formatCosts(&sb, op.Costs, op.Timing, false)
			writeLenPrefixed(h, sb.String())
		}
	}

	// Constraints prove cross-field exclusivity (sharing rule 4).
	for _, c := range d.Constraints {
		writeLenPrefixed(h, "constraint "+c.Text)
	}

	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// writeParamsAndShape renders a parameter list (names and types) and the
// value-independent shape of a signature: one character per bit — 'x'
// don't-care, 'c' constant (any value), then the parameter index for
// parameter bits.
func writeParamsAndShape(sb *strings.Builder, params []*Param, sig *Signature) {
	for _, p := range params {
		fmt.Fprintf(sb, " (%s: %s)", p.Name, p.TypeName)
	}
	sb.WriteString(" sig ")
	for _, b := range sig.Bits {
		switch b.Kind {
		case SigConst:
			sb.WriteByte('c')
		case SigParam:
			sb.WriteByte('p')
			writeInt(sb, b.Param)
		default:
			sb.WriteByte('x')
		}
	}
}

func writeInt(sb *strings.Builder, v int) {
	sb.WriteByte(' ')
	// Decimal render without fmt on this many-small-calls path.
	if v < 0 {
		sb.WriteByte('-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	sb.Write(buf[i:])
}

// writeLenPrefixed writes one length-prefixed string into a hash, so no
// two distinct sequences of parts collide by concatenation.
func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, s string) {
	var n [8]byte
	for i, l := 0, len(s); i < 8; i++ {
		n[i] = byte(l >> (8 * i))
	}
	h.Write(n[:])
	h.Write([]byte(s))
}
