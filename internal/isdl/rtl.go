package isdl

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// This file defines the RTL expression and statement AST used by operation
// actions and side effects (§2.1.3 parts 3–4). The same AST is interpreted
// by the simulator (internal/xsim) and compiled to hardware nodes by the
// synthesis system (internal/hgen) — the paper's single-description
// methodology.

// Expr is an RTL expression. Width() is valid after the semantic pass.
type Expr interface {
	Pos() Pos
	// Width is the expression's bit width; 0 for untyped literals before
	// width inference resolves them.
	Width() int
	String() string
	exprNode()
}

// Stmt is an RTL statement.
type Stmt interface {
	Pos() Pos
	String() string
	stmtNode()
}

// Lit is a literal. Sized literals (0b…, n'h…) carry an explicit width;
// unsized decimal literals adapt to their context during width inference.
type Lit struct {
	At    Pos
	Val   bitvec.Value
	Sized bool
	// Dec is the original decimal magnitude for unsized literals; Neg its
	// sign. The semantic pass materializes Val at the inferred width.
	Dec uint64
	Neg bool
}

// Ref names a storage element, an alias, or a parameter.
type Ref struct {
	At   Pos
	Name string

	// Resolved by the semantic pass: exactly one of the following.
	Storage *Storage
	AliasTo *Alias
	Param   *Param
	W       int
}

// Index is an addressed storage access: Name[Idx].
type Index struct {
	At      Pos
	Name    string
	Idx     Expr
	Storage *Storage
	W       int
}

// SliceE extracts bits [Hi:Lo] of X; bounds are static, per ISDL bitfield
// style.
type SliceE struct {
	At     Pos
	X      Expr
	Hi, Lo int
}

// Unary applies "-", "~" or "!" to X.
type Unary struct {
	At Pos
	Op string
	X  Expr
	W  int
}

// Binary applies an arithmetic, logical, shift or comparison operator.
type Binary struct {
	At   Pos
	Op   string
	X, Y Expr
	W    int
}

// Call invokes one of the builtin RTL functions: sext, zext, trunc, carry,
// borrow, concat, push, pop.
type Call struct {
	At   Pos
	Fn   string
	Args []Expr
	W    int
}

func (e *Lit) Pos() Pos    { return e.At }
func (e *Ref) Pos() Pos    { return e.At }
func (e *Index) Pos() Pos  { return e.At }
func (e *SliceE) Pos() Pos { return e.At }
func (e *Unary) Pos() Pos  { return e.At }
func (e *Binary) Pos() Pos { return e.At }
func (e *Call) Pos() Pos   { return e.At }

func (e *Lit) Width() int {
	if e.Sized {
		return e.Val.Width()
	}
	return e.Val.Width() // materialized during inference; 0 before
}
func (e *Ref) Width() int    { return e.W }
func (e *Index) Width() int  { return e.W }
func (e *SliceE) Width() int { return e.Hi - e.Lo + 1 }
func (e *Unary) Width() int  { return e.W }
func (e *Binary) Width() int { return e.W }
func (e *Call) Width() int   { return e.W }

func (e *Lit) String() string {
	if !e.Sized && e.Val.Width() == 0 {
		if e.Neg {
			return fmt.Sprintf("-%d", e.Dec)
		}
		return fmt.Sprintf("%d", e.Dec)
	}
	return e.Val.String()
}
func (e *Ref) String() string   { return e.Name }
func (e *Index) String() string { return fmt.Sprintf("%s[%s]", e.Name, e.Idx) }
func (e *SliceE) String() string {
	return fmt.Sprintf("%s[%d:%d]", e.X, e.Hi, e.Lo)
}
func (e *Unary) String() string  { return fmt.Sprintf("%s%s", e.Op, e.X) }
func (e *Binary) String() string { return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y) }
func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(args, ", "))
}

func (*Lit) exprNode()    {}
func (*Ref) exprNode()    {}
func (*Index) exprNode()  {}
func (*SliceE) exprNode() {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Call) exprNode()   {}

// Assign is "lvalue <- expr;". The LHS must resolve to a storage location
// (possibly through a non-terminal parameter whose value is a location).
type Assign struct {
	At  Pos
	LHS Expr
	RHS Expr
}

// If guards statements on a 1-bit (or truthiness-tested) condition.
type If struct {
	At   Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ExprStmt evaluates an expression for its effect (push/pop builtins).
type ExprStmt struct {
	At Pos
	X  Expr
}

func (s *Assign) Pos() Pos   { return s.At }
func (s *If) Pos() Pos       { return s.At }
func (s *ExprStmt) Pos() Pos { return s.At }

func (s *Assign) String() string { return fmt.Sprintf("%s <- %s;", s.LHS, s.RHS) }
func (s *If) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "if (%s) { ", s.Cond)
	for _, st := range s.Then {
		sb.WriteString(st.String())
		sb.WriteByte(' ')
	}
	sb.WriteString("}")
	if len(s.Else) > 0 {
		sb.WriteString(" else { ")
		for _, st := range s.Else {
			sb.WriteString(st.String())
			sb.WriteByte(' ')
		}
		sb.WriteString("}")
	}
	return sb.String()
}
func (s *ExprStmt) String() string { return s.X.String() + ";" }

func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*ExprStmt) stmtNode() {}

// WalkExprs calls fn for every expression in the statement list, including
// nested sub-expressions (parents after children).
func WalkExprs(stmts []Stmt, fn func(Expr)) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Assign:
			walkExpr(s.LHS, fn)
			walkExpr(s.RHS, fn)
		case *If:
			walkExpr(s.Cond, fn)
			WalkExprs(s.Then, fn)
			WalkExprs(s.Else, fn)
		case *ExprStmt:
			walkExpr(s.X, fn)
		}
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *Index:
		walkExpr(e.Idx, fn)
	case *SliceE:
		walkExpr(e.X, fn)
	case *Unary:
		walkExpr(e.X, fn)
	case *Binary:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *Call:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	}
	fn(e)
}

// WalkExpr exposes walkExpr for single expressions.
func WalkExpr(e Expr, fn func(Expr)) { walkExpr(e, fn) }
