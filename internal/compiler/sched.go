package compiler

import (
	"fmt"
	"strings"

	"repro/internal/decode"
	"repro/internal/isdl"
)

// The VLIW scheduler: in-order greedy packing of the selected operations
// into long instructions. An operation joins the open bundle only when its
// field slot is free, the combination satisfies every ISDL constraint, and
// VLIW read-before-write semantics preserve the sequential meaning:
//
//   - it must not read a location a bundle member writes (it would see the
//     old value),
//   - it must not write a location a bundle member writes (write order),
//   - reading a location a bundle member reads, or that it later overwrites
//     (WAR), is fine — both orders see the old value.
//
// Control-transfer operations may join a bundle last (SPAM's "mac || djnz"
// idiom) and then seal it.
func schedule(d *isdl.Description, emits []emitted, noPacking bool) string {
	var sb strings.Builder

	nops := make([]*isdl.Operation, len(d.Fields))
	for i, f := range d.Fields {
		if op, ok := f.ByName["nop"]; ok && len(op.Params) == 0 {
			nops[i] = op
		}
	}

	var bundle []*emitted
	flush := func() {
		if len(bundle) == 0 {
			return
		}
		parts := make([]string, len(bundle))
		for i, e := range bundle {
			parts[i] = renderOpText(d, e)
		}
		fmt.Fprintf(&sb, "    %s\n", strings.Join(parts, " || "))
		bundle = bundle[:0]
	}

	canJoin := func(e *emitted) bool {
		if len(bundle) == 0 {
			return true
		}
		if noPacking {
			return false
		}
		sel := map[*isdl.Operation]bool{}
		used := map[int]bool{}
		for _, m := range bundle {
			if m.control {
				return false
			}
			fi := m.dop.Op.Field.Index
			if used[fi] {
				return false
			}
			used[fi] = true
			sel[m.dop.Op] = true
			// Hazards against this member.
			for _, r := range e.reads {
				for _, w := range m.writes {
					if r == w {
						return false
					}
				}
			}
			for _, w := range e.writes {
				for _, mw := range m.writes {
					if w == mw {
						return false
					}
				}
			}
		}
		fi := e.dop.Op.Field.Index
		if used[fi] {
			return false
		}
		sel[e.dop.Op] = true
		// Fill the remaining fields with nops for the constraint check.
		for i := range d.Fields {
			if i == fi || used[i] {
				continue
			}
			if nops[i] == nil {
				return false
			}
			sel[nops[i]] = true
		}
		return decode.CheckConstraints(d, sel) == nil
	}

	for i := range emits {
		e := &emits[i]
		if e.label != "" {
			flush()
			fmt.Fprintf(&sb, "%s:\n", e.label)
			continue
		}
		if !canJoin(e) {
			flush()
		}
		bundle = append(bundle, e)
		if e.control {
			flush()
		}
	}
	flush()
	return sb.String()
}

// renderOpText renders one operation as assembly, substituting symbolic
// labels for branch/jump target parameters. The mnemonic is field-qualified
// when ambiguous, exactly as the disassembler would print it.
func renderOpText(d *isdl.Description, e *emitted) string {
	op := e.dop.Op
	var sb strings.Builder
	count := 0
	for _, f := range d.Fields {
		if _, ok := f.ByName[op.Name]; ok {
			count++
		}
	}
	if count > 1 {
		sb.WriteString(op.Field.Name)
		sb.WriteByte('.')
	}
	sb.WriteString(op.Name)
	renderSyn(&sb, op.Syntax, e.dop.Args, e.syms, true)
	return sb.String()
}

func renderSyn(sb *strings.Builder, syn []isdl.SynElem, args []decode.Arg, syms map[int]string, leading bool) {
	first := leading
	for _, el := range syn {
		switch {
		case el.Lit == ",":
			sb.WriteString(", ")
			first = false
		case el.Lit != "":
			if first {
				sb.WriteByte(' ')
				first = false
			}
			sb.WriteString(el.Lit)
		default:
			if first {
				sb.WriteByte(' ')
				first = false
			}
			if sym, ok := syms[el.Param]; ok {
				sb.WriteString(sym)
				continue
			}
			renderSchedArg(sb, &args[el.Param])
		}
	}
}

func renderSchedArg(sb *strings.Builder, a *decode.Arg) {
	if a.Param.Token != nil {
		if name, ok := a.Param.Token.NameFor(a.Value); ok {
			sb.WriteString(name)
		} else {
			sb.WriteString(a.Value.String())
		}
		return
	}
	renderSyn(sb, a.Option.Syntax, a.Sub, nil, false)
}
