// Package compiler is a compact retargetable code generator in the spirit
// of the AVIV system the paper's exploration loop relies on ([2], Figure 1).
// It compiles a small imperative kernel language to the assembly of any
// ISDL machine that exposes the usual primitives (register-file ALU
// operations, immediate moves, loads/stores, a branch and a halt), which it
// discovers by classifying the behaviour of each operation's RTL — no
// per-machine tables.
//
// The kernel language:
//
//	var x, y = 3;                 // machine-word variables
//	array a[16] in DMX at 0 = { 1, 2, 3 };
//	for i = 0 to 15 { s = s + a[i]; }
//	while (x < y) { x = x + 1; }
//	if (s >= 100) { y = s - 100; } else { y = s; }
//
// Programs halt implicitly at the end.
package compiler

import (
	"fmt"
	"strconv"
	"strings"
)

// --- AST ---------------------------------------------------------------

// Program is a parsed kernel program.
type Program struct {
	Vars   []*VarDecl
	Arrays []*ArrayDecl
	Body   []Stmt
}

// VarDecl declares a machine-word variable with an optional initial value.
type VarDecl struct {
	Name string
	Init int64
}

// ArrayDecl binds an array to a region of a named data storage.
type ArrayDecl struct {
	Name    string
	Size    int
	Storage string
	Base    int
	Init    []int64
}

// Stmt is a kernel statement.
type Stmt interface{ kstmt() }

// AssignStmt is "name = expr;" or "name[idx] = expr;".
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalars
	Value Expr
}

// IfStmt is a two-armed conditional.
type IfStmt struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// WhileStmt loops while the condition holds.
type WhileStmt struct {
	Cond Cond
	Body []Stmt
}

// ForStmt is an inclusive counted loop.
type ForStmt struct {
	Var      string
	From, To Expr
	Body     []Stmt
}

func (*AssignStmt) kstmt() {}
func (*IfStmt) kstmt()     {}
func (*WhileStmt) kstmt()  {}
func (*ForStmt) kstmt()    {}

// Cond is a relational condition.
type Cond struct {
	Op   string // == != < <= > >=
	L, R Expr
}

// Expr is a kernel expression.
type Expr interface{ kexpr() }

// Num is an integer literal.
type Num struct{ V int64 }

// Var reads a scalar variable.
type Var struct{ Name string }

// Elem reads an array element.
type Elem struct {
	Name string
	Idx  Expr
}

// Bin is a binary operation: + - * & | ^ << >>.
type Bin struct {
	Op   string
	L, R Expr
}

func (*Num) kexpr()  {}
func (*Var) kexpr()  {}
func (*Elem) kexpr() {}
func (*Bin) kexpr()  {}

// --- Parser ------------------------------------------------------------

// ParseKernel parses kernel-language source.
func ParseKernel(src string) (*Program, error) {
	p := &kparser{toks: ktokenize(src)}
	prog := &Program{}
	for !p.eof() {
		switch {
		case p.at("var"):
			if err := p.parseVar(prog); err != nil {
				return nil, err
			}
		case p.at("array"):
			if err := p.parseArray(prog); err != nil {
				return nil, err
			}
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			prog.Body = append(prog.Body, s)
		}
	}
	return prog, nil
}

type ktok struct {
	text  string
	num   int64
	isNum bool
	line  int
}

func ktokenize(src string) []ktok {
	var out []ktok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			n, _ := strconv.ParseInt(src[i:j], 10, 64)
			out = append(out, ktok{text: src[i:j], num: n, isNum: true, line: line})
			i = j
		case isKWord(c):
			j := i
			for j < len(src) && (isKWord(src[j]) || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			out = append(out, ktok{text: src[i:j], line: line})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "<<", ">>":
				out = append(out, ktok{text: two, line: line})
				i += 2
			default:
				out = append(out, ktok{text: string(c), line: line})
				i++
			}
		}
	}
	return out
}

func isKWord(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type kparser struct {
	toks []ktok
	pos  int
}

func (p *kparser) eof() bool { return p.pos >= len(p.toks) }

func (p *kparser) at(s string) bool {
	return !p.eof() && !p.toks[p.pos].isNum && p.toks[p.pos].text == s
}

func (p *kparser) accept(s string) bool {
	if p.at(s) {
		p.pos++
		return true
	}
	return false
}

func (p *kparser) errf(format string, args ...interface{}) error {
	line := 0
	if !p.eof() {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("kernel line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *kparser) expect(s string) error {
	if !p.accept(s) {
		found := "<eof>"
		if !p.eof() {
			found = p.toks[p.pos].text
		}
		return p.errf("expected %q, found %q", s, found)
	}
	return nil
}

func (p *kparser) ident() (string, error) {
	if p.eof() || p.toks[p.pos].isNum || !isKWord(p.toks[p.pos].text[0]) {
		return "", p.errf("expected identifier")
	}
	t := p.toks[p.pos].text
	p.pos++
	return t, nil
}

func (p *kparser) number() (int64, error) {
	neg := p.accept("-")
	if p.eof() || !p.toks[p.pos].isNum {
		return 0, p.errf("expected number")
	}
	v := p.toks[p.pos].num
	p.pos++
	if neg {
		v = -v
	}
	return v, nil
}

func (p *kparser) parseVar(prog *Program) error {
	p.pos++ // var
	for {
		name, err := p.ident()
		if err != nil {
			return err
		}
		d := &VarDecl{Name: name}
		if p.accept("=") {
			if d.Init, err = p.number(); err != nil {
				return err
			}
		}
		prog.Vars = append(prog.Vars, d)
		if !p.accept(",") {
			break
		}
	}
	return p.expect(";")
}

func (p *kparser) parseArray(prog *Program) error {
	p.pos++ // array
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("["); err != nil {
		return err
	}
	size, err := p.number()
	if err != nil {
		return err
	}
	if err := p.expect("]"); err != nil {
		return err
	}
	if err := p.expect("in"); err != nil {
		return err
	}
	stg, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("at"); err != nil {
		return err
	}
	base, err := p.number()
	if err != nil {
		return err
	}
	d := &ArrayDecl{Name: name, Size: int(size), Storage: stg, Base: int(base)}
	if p.accept("=") {
		if err := p.expect("{"); err != nil {
			return err
		}
		for !p.at("}") {
			v, err := p.number()
			if err != nil {
				return err
			}
			d.Init = append(d.Init, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("}"); err != nil {
			return err
		}
		if len(d.Init) > d.Size {
			return p.errf("array %s: %d initializers for %d elements", name, len(d.Init), d.Size)
		}
	}
	prog.Arrays = append(prog.Arrays, d)
	return p.expect(";")
}

func (p *kparser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		if p.eof() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *kparser) parseStmt() (Stmt, error) {
	switch {
	case p.at("if"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept("else") {
			if st.Else, err = p.parseBlock(); err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.at("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.at("for"):
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: name, From: from, To: to, Body: body}, nil
	}

	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &AssignStmt{Name: name}
	if p.accept("[") {
		if st.Index, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	if st.Value, err = p.parseExpr(); err != nil {
		return nil, err
	}
	return st, p.expect(";")
}

func (p *kparser) parseCond() (Cond, error) {
	l, err := p.parseExpr()
	if err != nil {
		return Cond{}, err
	}
	var op string
	for _, candidate := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(candidate) {
			op = candidate
			break
		}
	}
	if op == "" {
		return Cond{}, p.errf("expected relational operator")
	}
	r, err := p.parseExpr()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Op: op, L: l, R: r}, nil
}

func (p *kparser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		case p.accept("|"):
			op = "|"
		case p.accept("^"):
			op = "^"
		default:
			return l, nil
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *kparser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("&"):
			op = "&"
		case p.accept("<<"):
			op = "<<"
		case p.accept(">>"):
			op = ">>"
		default:
			return l, nil
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *kparser) parseFactor() (Expr, error) {
	switch {
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case p.accept("-"):
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if n, ok := f.(*Num); ok {
			return &Num{V: -n.V}, nil
		}
		return &Bin{Op: "-", L: &Num{V: 0}, R: f}, nil
	case !p.eof() && p.toks[p.pos].isNum:
		v := p.toks[p.pos].num
		p.pos++
		return &Num{V: v}, nil
	default:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.accept("[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &Elem{Name: name, Idx: idx}, nil
		}
		return &Var{Name: name}, nil
	}
}

// String renders the program back to (normalized) source, for diagnostics.
func (prog *Program) String() string {
	var sb strings.Builder
	for _, v := range prog.Vars {
		fmt.Fprintf(&sb, "var %s = %d;\n", v.Name, v.Init)
	}
	for _, a := range prog.Arrays {
		fmt.Fprintf(&sb, "array %s[%d] in %s at %d;\n", a.Name, a.Size, a.Storage, a.Base)
	}
	fmt.Fprintf(&sb, "// %d top-level statements\n", len(prog.Body))
	return sb.String()
}
