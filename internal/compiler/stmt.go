package compiler

import (
	"repro/internal/decode"
)

// Statement and expression lowering. Conditions are synthesized from
// whatever branch primitives the target exposes: a branch-if-zero /
// branch-if-non-zero, or a register-equality branch plus a jump. Relational
// tests use the sign of a difference (masked with the minimum-integer
// constant), which needs only subtract and bitwise-and — primitives every
// classifiable machine has.

func (g *codegen) stmts(list []Stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *AssignStmt:
		if s.Index != nil {
			return g.assignElem(s)
		}
		loc, ok := g.vars[s.Name]
		if !ok {
			return g.errf("undeclared variable %s", s.Name)
		}
		if loc.spilled {
			val, err := g.eval(s.Value)
			if err != nil {
				return err
			}
			addr, err := g.allocTemp()
			if err != nil {
				return err
			}
			if err := g.emitConst(addr, int64(loc.addr)); err != nil {
				return err
			}
			if err := g.emitStore(loc.mem, addr, val); err != nil {
				return err
			}
			g.freeTemp(addr)
			g.freeIfTemp(val)
			return nil
		}
		return g.evalInto(loc.reg, s.Value)

	case *IfStmt:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		target := elseL
		if len(s.Else) == 0 {
			target = endL
		}
		if err := g.branchCond(s.Cond, target, false); err != nil {
			return err
		}
		if err := g.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			g.emitJump(endL)
			g.pushLabel(elseL)
			if err := g.stmts(s.Else); err != nil {
				return err
			}
		}
		g.pushLabel(endL)
		return nil

	case *WhileStmt:
		loopL := g.newLabel("while")
		endL := g.newLabel("wend")
		g.pushLabel(loopL)
		if err := g.branchCond(s.Cond, endL, false); err != nil {
			return err
		}
		if err := g.stmts(s.Body); err != nil {
			return err
		}
		g.emitJump(loopL)
		g.pushLabel(endL)
		return nil

	case *ForStmt:
		loc, ok := g.vars[s.Var]
		if !ok {
			return g.errf("for loop variable %s is not declared", s.Var)
		}
		if loc.spilled {
			return g.errf("for loop variable %s must live in a register (declare it earlier)", s.Var)
		}
		if err := g.evalInto(loc.reg, s.From); err != nil {
			return err
		}
		loopL := g.newLabel("for")
		endL := g.newLabel("fend")
		g.pushLabel(loopL)
		if err := g.branchCond(Cond{Op: "<=", L: &Var{Name: s.Var}, R: s.To}, endL, false); err != nil {
			return err
		}
		if err := g.stmts(s.Body); err != nil {
			return err
		}
		if !g.emitBinImm("+", loc.reg, loc.reg, 1) {
			one, err := g.allocTemp()
			if err != nil {
				return err
			}
			if err := g.emitConst(one, 1); err != nil {
				return err
			}
			if err := g.emitBin("+", loc.reg, loc.reg, one); err != nil {
				return err
			}
			g.freeTemp(one)
		}
		g.emitJump(loopL)
		g.pushLabel(endL)
		return nil
	}
	return g.errf("unknown statement")
}

func (g *codegen) assignElem(s *AssignStmt) error {
	arr, ok := g.arrays[s.Name]
	if !ok {
		return g.errf("undeclared array %s", s.Name)
	}
	val, err := g.eval(s.Value)
	if err != nil {
		return err
	}
	addr, err := g.evalAddr(arr, s.Index)
	if err != nil {
		return err
	}
	if err := g.emitStore(arr.Storage, addr, val); err != nil {
		return err
	}
	g.freeIfTemp(addr)
	g.freeIfTemp(val)
	return nil
}

// eval computes an expression into a register: a variable's home register
// when possible (not to be modified by the caller), otherwise a fresh
// temporary.
func (g *codegen) eval(e Expr) (int, error) {
	if v, ok := e.(*Var); ok {
		if loc, found := g.vars[v.Name]; found && !loc.spilled {
			return loc.reg, nil
		}
	}
	t, err := g.allocTemp()
	if err != nil {
		return 0, err
	}
	if err := g.evalInto(t, e); err != nil {
		return 0, err
	}
	return t, nil
}

// evalInto computes an expression into a specific register.
func (g *codegen) evalInto(dst int, e Expr) error {
	switch e := e.(type) {
	case *Num:
		return g.emitConst(dst, e.V)
	case *Var:
		loc, ok := g.vars[e.Name]
		if !ok {
			return g.errf("undeclared variable %s", e.Name)
		}
		if loc.spilled {
			addr, err := g.allocTemp()
			if err != nil {
				return err
			}
			if err := g.emitConst(addr, int64(loc.addr)); err != nil {
				return err
			}
			if err := g.emitLoad(loc.mem, dst, addr); err != nil {
				return err
			}
			g.freeTemp(addr)
			return nil
		}
		if loc.reg == dst {
			return nil
		}
		return g.emitMovReg(dst, loc.reg)
	case *Elem:
		arr, ok := g.arrays[e.Name]
		if !ok {
			return g.errf("undeclared array %s", e.Name)
		}
		addr, err := g.evalAddr(arr, e.Idx)
		if err != nil {
			return err
		}
		if err := g.emitLoad(arr.Storage, dst, addr); err != nil {
			return err
		}
		g.freeIfTemp(addr)
		return nil
	case *Bin:
		a, err := g.eval(e.L)
		if err != nil {
			return err
		}
		if n, ok := e.R.(*Num); ok && g.emitBinImm(e.Op, dst, a, n.V) {
			g.freeIfTemp(a)
			return nil
		}
		b, err := g.eval(e.R)
		if err != nil {
			return err
		}
		if err := g.emitBin(e.Op, dst, a, b); err != nil {
			return err
		}
		g.freeIfTemp(a)
		g.freeIfTemp(b)
		return nil
	}
	return g.errf("unknown expression")
}

// evalAddr computes the address of arr[idx] into a register.
func (g *codegen) evalAddr(arr *ArrayDecl, idx Expr) (int, error) {
	if n, ok := idx.(*Num); ok {
		t, err := g.allocTemp()
		if err != nil {
			return 0, err
		}
		return t, g.emitConst(t, int64(arr.Base)+n.V)
	}
	ireg, err := g.eval(idx)
	if err != nil {
		return 0, err
	}
	if arr.Base == 0 {
		return ireg, nil
	}
	t, err := g.allocTemp()
	if err != nil {
		return 0, err
	}
	if g.emitBinImm("+", t, ireg, int64(arr.Base)) {
		g.freeIfTemp(ireg)
		return t, nil
	}
	if err := g.emitConst(t, int64(arr.Base)); err != nil {
		return 0, err
	}
	if err := g.emitBin("+", t, t, ireg); err != nil {
		return 0, err
	}
	g.freeIfTemp(ireg)
	return t, nil
}

// --- conditions ----------------------------------------------------------

var negated = map[string]string{
	"==": "!=", "!=": "==", "<": ">=", ">=": "<", "<=": ">", ">": "<=",
}

// branchCond branches to target when the condition's truth equals whenTrue.
func (g *codegen) branchCond(c Cond, target string, whenTrue bool) error {
	op := c.Op
	if !whenTrue {
		op = negated[op]
	}
	l, r := c.L, c.R
	// Reduce > and >= by swapping operands.
	switch op {
	case ">":
		op, l, r = "<", r, l
	case ">=":
		op, l, r = "<=", r, l
	}

	a, err := g.eval(l)
	if err != nil {
		return err
	}
	b, err := g.eval(r)
	if err != nil {
		return err
	}

	switch op {
	case "==", "!=":
		diff, err := g.allocTemp()
		if err != nil {
			return err
		}
		if err := g.emitBin("-", diff, a, b); err != nil {
			return err
		}
		g.freeIfTemp(a)
		g.freeIfTemp(b)
		defer g.freeTemp(diff)
		if op == "==" {
			return g.branchZero(diff, target)
		}
		return g.branchNonZero(diff, target)
	case "<", "<=":
		// a < b  ⇔ sign(a−b) ≠ 0; a <= b ⇔ sign(b−a) = 0 (signed,
		// overflow-free — documented kernel-language semantics).
		x, y := a, b
		if op == "<=" {
			x, y = b, a
		}
		s, err := g.allocTemp()
		if err != nil {
			return err
		}
		if err := g.emitBin("-", s, x, y); err != nil {
			return err
		}
		g.freeIfTemp(a)
		g.freeIfTemp(b)
		defer g.freeTemp(s)
		if err := g.maskSign(s); err != nil {
			return err
		}
		if op == "<" {
			return g.branchNonZero(s, target)
		}
		return g.branchZero(s, target)
	}
	return g.errf("unknown condition %q", c.Op)
}

// maskSign replaces r with r & minInt (its sign bit).
func (g *codegen) maskSign(r int) error {
	w := g.t.RF.Width
	minInt := int64(-1) << uint(w-1)
	if w > 63 {
		return g.errf("register width %d too wide for relational lowering", w)
	}
	if g.emitBinImm("&", r, r, minInt) {
		return nil
	}
	m, err := g.allocTemp()
	if err != nil {
		return err
	}
	if err := g.emitConst(m, int64(1)<<uint(w-1)); err != nil {
		return err
	}
	if err := g.emitBin("&", r, r, m); err != nil {
		return err
	}
	g.freeTemp(m)
	return nil
}

// branchZero branches to target when reg == 0.
func (g *codegen) branchZero(reg int, target string) error {
	if b := g.t.branchOf(BrZ); b != nil {
		g.emitBranch(b, reg, -1, target)
		return nil
	}
	if b := g.t.branchOf(BrEQPair); b != nil {
		z, err := g.zeroReg()
		if err != nil {
			return err
		}
		g.emitBranch(b, reg, z, target)
		g.freeTemp(z)
		return nil
	}
	if b := g.t.branchOf(BrNZ); b != nil {
		skip := g.newLabel("skip")
		g.emitBranch(b, reg, -1, skip)
		g.emitJump(target)
		g.pushLabel(skip)
		return nil
	}
	return g.errf("machine %s has no branch primitive", g.t.D.Name)
}

// branchNonZero branches to target when reg != 0.
func (g *codegen) branchNonZero(reg int, target string) error {
	if b := g.t.branchOf(BrNZ); b != nil {
		g.emitBranch(b, reg, -1, target)
		return nil
	}
	skip := g.newLabel("skip")
	if b := g.t.branchOf(BrZ); b != nil {
		g.emitBranch(b, reg, -1, skip)
		g.emitJump(target)
		g.pushLabel(skip)
		return nil
	}
	if b := g.t.branchOf(BrEQPair); b != nil {
		z, err := g.zeroReg()
		if err != nil {
			return err
		}
		g.emitBranch(b, reg, z, skip)
		g.freeTemp(z)
		g.emitJump(target)
		g.pushLabel(skip)
		return nil
	}
	return g.errf("machine %s has no branch primitive", g.t.D.Name)
}

func (g *codegen) zeroReg() (int, error) {
	z, err := g.allocTemp()
	if err != nil {
		return 0, err
	}
	if !g.emitMovImm(z, 0) {
		return 0, g.errf("cannot materialize zero")
	}
	return z, nil
}

// emitBranch pushes a conditional branch (b2 = -1 for single-register
// kinds) with a symbolic target.
func (g *codegen) emitBranch(b *MachBranch, r1, r2 int, target string) {
	args := make([]decode.Arg, len(b.Op.Params))
	args[b.A] = tokArg(b.Op.Params[b.A], int64(r1))
	reads := []string{regName(r1)}
	if b.B >= 0 {
		args[b.B] = tokArg(b.Op.Params[b.B], int64(r2))
		reads = append(reads, regName(r2))
	}
	args[b.Target] = decode.Arg{Param: b.Op.Params[b.Target], Value: symbolValue(b.Op.Params[b.Target], target)}
	g.emits = append(g.emits, emitted{
		dop: &decode.Op{Op: b.Op, Args: args}, reads: reads, control: true,
		syms: map[int]string{b.Target: target},
	})
}
