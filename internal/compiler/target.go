package compiler

import (
	"fmt"

	"repro/internal/isdl"
)

// This file classifies the operations of an ISDL description into the
// code-generation primitives the backend needs, by matching their RTL
// behaviour — the instruction-selection knowledge AVIV derives from the
// description rather than from hand-written tables.

// Operand describes how an operation names one of its source operands.
type Operand struct {
	Param int
	// Direct register token (RF[r] appears with r a token parameter).
	DirectReg bool
	// Direct immediate token (the operand is (an extension of) an Imm
	// token parameter, RISC style).
	DirectImm bool
	// Non-terminal with a register option and possibly an immediate
	// option.
	RegOption *isdl.Option
	RegSub    int
	ImmOption *isdl.Option
	ImmSub    int
	ImmTok    *isdl.Token
}

// HasImm reports whether the operand can encode an immediate.
func (o *Operand) HasImm() bool { return o.DirectImm || o.ImmOption != nil }

// MachBin is a three-address ALU operation RF[d] <- RF[a] sym B.
type MachBin struct {
	Op   *isdl.Operation
	Sym  string
	Dst  int
	A, B Operand
}

// MachMov is RF[d] <- src (register or immediate through a non-terminal).
type MachMov struct {
	Op  *isdl.Operation
	Dst int
	Src Operand
}

// MachLoad is RF[d] <- MEM[addr] with either register-indirect addressing
// (MEM[RF[a]]) or address-register addressing through a non-terminal option
// (MEM[AR[a]]).
type MachLoad struct {
	Op  *isdl.Operation
	Dst int
	Mem string

	RegAddrParam int // -1 when AR-addressed
	// OffParam is the immediate-offset parameter of MEM[RF[a] + off]
	// addressing (RISC style); -1 when the operation has no offset. The
	// code generator passes 0.
	OffParam int

	MemParam  int
	AROption  *isdl.Option
	ARSub     int
	ARStorage string
}

// MachStore is the mirror of MachLoad.
type MachStore struct {
	Op  *isdl.Operation
	Val int
	Mem string

	RegAddrParam int
	OffParam     int // see MachLoad.OffParam

	MemParam  int
	AROption  *isdl.Option
	ARSub     int
	ARStorage string
}

// MachSetAR writes an address register from a general register.
type MachSetAR struct {
	Op        *isdl.Operation
	ARStorage string
	ARParam   int
	SrcParam  int
}

// BranchKind classifies branch primitives.
type BranchKind int

const (
	// BrEQPair branches when two registers are equal.
	BrEQPair BranchKind = iota
	// BrZ branches when a register is zero.
	BrZ
	// BrNZ branches when a register is non-zero.
	BrNZ
)

// MachBranch is a conditional branch primitive.
type MachBranch struct {
	Op     *isdl.Operation
	Kind   BranchKind
	A, B   int // register params (B = -1 for BrZ/BrNZ)
	Target int
}

// MachJump is an unconditional jump; MachHalt stops the machine.
type MachJump struct {
	Op     *isdl.Operation
	Target int
}

// MachHalt names the halt operation.
type MachHalt struct{ Op *isdl.Operation }

// Target is the classified code-generation model of one machine.
type Target struct {
	D  *isdl.Description
	RF *isdl.Storage

	Bins   map[string][]*MachBin
	Movs   []*MachMov
	Loads  map[string][]*MachLoad  // by memory storage
	Stores map[string][]*MachStore // by memory storage
	SetARs map[string][]*MachSetAR // by AR storage

	Branches []*MachBranch
	Jump     *MachJump
	Halt     *MachHalt
}

// NewTarget classifies a description. It tries every register file and
// keeps the one that yields the richest operation set.
func NewTarget(d *isdl.Description) (*Target, error) {
	var best *Target
	bestScore := -1
	for _, st := range d.Storage {
		if st.Kind != isdl.StRegFile {
			continue
		}
		t := classify(d, st)
		score := len(t.Movs) + len(t.Branches)
		for _, b := range t.Bins {
			score += len(b)
		}
		for _, l := range t.Loads {
			score += len(l)
		}
		if score > bestScore {
			best, bestScore = t, score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("compiler: %s has no register file", d.Name)
	}
	if err := best.validate(); err != nil {
		return nil, err
	}
	return best, nil
}

func (t *Target) validate() error {
	missing := func(what string) error {
		return fmt.Errorf("compiler: %s: no usable %s operation", t.D.Name, what)
	}
	hasMovImm := false
	for _, m := range t.Movs {
		if m.Src.HasImm() {
			hasMovImm = true
		}
	}
	if !hasMovImm {
		return missing("move-immediate")
	}
	if len(t.Bins["+"]) == 0 || len(t.Bins["-"]) == 0 {
		return missing("add/sub")
	}
	if t.Jump == nil {
		return missing("jump")
	}
	if t.Halt == nil {
		return missing("halt")
	}
	if len(t.Branches) == 0 {
		return missing("conditional branch")
	}
	return nil
}

func classify(d *isdl.Description, rf *isdl.Storage) *Target {
	t := &Target{
		D: d, RF: rf,
		Bins:   map[string][]*MachBin{},
		Loads:  map[string][]*MachLoad{},
		Stores: map[string][]*MachStore{},
		SetARs: map[string][]*MachSetAR{},
	}
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			t.classifyOp(op)
		}
	}
	return t
}

// --- RTL pattern helpers -------------------------------------------------

// regIndexParam matches Index{rf, Ref{token param}} and returns the
// parameter index.
func regIndexParam(e isdl.Expr, rf *isdl.Storage, params []*isdl.Param) (int, bool) {
	ix, ok := e.(*isdl.Index)
	if !ok || ix.Storage != rf {
		return 0, false
	}
	ref, ok := ix.Idx.(*isdl.Ref)
	if !ok || ref.Param == nil || ref.Param.Token == nil {
		return 0, false
	}
	return paramIndex(params, ref.Param), true
}

func paramIndex(params []*isdl.Param, p *isdl.Param) int {
	for i := range params {
		if params[i] == p {
			return i
		}
	}
	return -1
}

// unwrapExt strips sext/zext/trunc wrappers.
func unwrapExt(e isdl.Expr) isdl.Expr {
	for {
		c, ok := e.(*isdl.Call)
		if !ok {
			return e
		}
		switch c.Fn {
		case "sext", "zext", "trunc":
			e = c.Args[0]
		default:
			return e
		}
	}
}

// classifyOperand matches a source operand: a direct register read or a
// non-terminal whose options are register/immediate.
func (t *Target) classifyOperand(e isdl.Expr, params []*isdl.Param) (Operand, bool) {
	if pi, ok := regIndexParam(e, t.RF, params); ok {
		return Operand{Param: pi, DirectReg: true}, true
	}
	if ref, ok := unwrapExt(e).(*isdl.Ref); ok && ref.Param != nil && ref.Param.Token != nil && ref.Param.Token.Kind == isdl.TokImm {
		return Operand{Param: paramIndex(params, ref.Param), DirectImm: true, ImmTok: ref.Param.Token}, true
	}
	ref, ok := e.(*isdl.Ref)
	if !ok || ref.Param == nil || ref.Param.NT == nil {
		return Operand{}, false
	}
	o := Operand{Param: paramIndex(params, ref.Param)}
	for _, opt := range ref.Param.NT.Options {
		if len(opt.SideEffect) > 0 {
			continue // post-increment variants are not plain operands
		}
		if pi, ok := regIndexParam(opt.Value, t.RF, opt.Params); ok {
			if o.RegOption == nil {
				o.RegOption, o.RegSub = opt, pi
			}
			continue
		}
		v := unwrapExt(opt.Value)
		if sub, ok := v.(*isdl.Ref); ok && sub.Param != nil && sub.Param.Token != nil && sub.Param.Token.Kind == isdl.TokImm {
			if o.ImmOption == nil {
				o.ImmOption, o.ImmSub, o.ImmTok = opt, paramIndex(opt.Params, sub.Param), sub.Param.Token
			}
		}
	}
	if o.RegOption == nil && o.ImmOption == nil {
		return Operand{}, false
	}
	return o, true
}

// regOffsetAddr matches a memory index of the form RF[a] or
// RF[a] + sext(off), returning the register parameter and the offset
// parameter (-1 when absent).
func (t *Target) regOffsetAddr(idx isdl.Expr, params []*isdl.Param) (addr, off int, ok bool) {
	if a, isReg := regIndexParam(idx, t.RF, params); isReg {
		return a, -1, true
	}
	bin, isBin := idx.(*isdl.Binary)
	if !isBin || bin.Op != "+" {
		return 0, 0, false
	}
	a, okA := regIndexParam(bin.X, t.RF, params)
	if !okA {
		return 0, 0, false
	}
	ref, okR := unwrapExt(bin.Y).(*isdl.Ref)
	if !okR || ref.Param == nil || ref.Param.Token == nil || ref.Param.Token.Kind != isdl.TokImm {
		return 0, 0, false
	}
	return a, paramIndex(params, ref.Param), true
}

// memNTOption matches a non-terminal whose plain option reads
// MEM[AR[a]]; returns the option, the AR parameter within it, and the
// memory/AR storages.
func memNTOption(nt *isdl.NonTerminal) (opt *isdl.Option, arSub int, mem, ar string, ok bool) {
	for _, o := range nt.Options {
		if len(o.SideEffect) > 0 {
			continue
		}
		ix, isIx := o.Value.(*isdl.Index)
		if !isIx {
			continue
		}
		inner, isInner := ix.Idx.(*isdl.Index)
		if !isInner {
			continue
		}
		ref, isRef := inner.Idx.(*isdl.Ref)
		if !isRef || ref.Param == nil || ref.Param.Token == nil {
			continue
		}
		return o, paramIndex(o.Params, ref.Param), ix.Storage.Name, inner.Storage.Name, true
	}
	return nil, 0, "", "", false
}

func (t *Target) classifyOp(op *isdl.Operation) {
	// Branch shapes: a single If whose then-branch writes the PC.
	if len(op.Action) == 1 {
		if ifs, ok := op.Action[0].(*isdl.If); ok && len(ifs.Else) == 0 && len(ifs.Then) == 1 {
			t.classifyBranch(op, ifs)
			return
		}
	}
	if len(op.Action) != 1 {
		return
	}
	asg, ok := op.Action[0].(*isdl.Assign)
	if !ok {
		return
	}

	// Halt: a non-zero constant into a control register.
	if ref, ok := asg.LHS.(*isdl.Ref); ok && ref.Storage != nil {
		switch ref.Storage.Kind {
		case isdl.StControlRegister:
			if lit, ok := asg.RHS.(*isdl.Lit); ok && !lit.Val.IsZero() && t.Halt == nil {
				t.Halt = &MachHalt{Op: op}
			}
			return
		case isdl.StProgramCounter:
			if r, ok := asg.RHS.(*isdl.Ref); ok && r.Param != nil && r.Param.Token != nil && r.Param.Token.Kind == isdl.TokImm && t.Jump == nil {
				t.Jump = &MachJump{Op: op, Target: paramIndex(op.Params, r.Param)}
			}
			return
		}
	}

	// Destination RF[d]?
	if dst, ok := regIndexParam(asg.LHS, t.RF, op.Params); ok {
		switch rhs := asg.RHS.(type) {
		case *isdl.Binary:
			a, okA := t.classifyOperand(rhs.X, op.Params)
			b, okB := t.classifyOperand(rhs.Y, op.Params)
			if okA && okB && benignSideEffects(t.D, op) {
				t.Bins[rhs.Op] = append(t.Bins[rhs.Op], &MachBin{Op: op, Sym: rhs.Op, Dst: dst, A: a, B: b})
			}
			return
		case *isdl.Index:
			// A register-file read is a register move (mv Rd, Rs), not a
			// load — machines whose only untyped move is the reg-reg form
			// (no addi to synthesize one) need it classified.
			if src, ok := t.classifyOperand(rhs, op.Params); ok && src.DirectReg && benignSideEffects(t.D, op) {
				t.Movs = append(t.Movs, &MachMov{Op: op, Dst: dst, Src: src})
				return
			}
			// Register-indirect load: RF[d] <- MEM[RF[a]], possibly with an
			// immediate offset (RISC style): MEM[RF[a] + sext(off, …)].
			if a, off, ok := t.regOffsetAddr(rhs.Idx, op.Params); ok {
				t.Loads[rhs.Name] = append(t.Loads[rhs.Name], &MachLoad{
					Op: op, Dst: dst, Mem: rhs.Name, RegAddrParam: a, OffParam: off, MemParam: -1,
				})
			}
			return
		case *isdl.Ref:
			if rhs.Param != nil && rhs.Param.NT != nil {
				// AR-addressed load?
				if opt, arSub, mem, ar, ok := memNTOption(rhs.Param.NT); ok {
					t.Loads[mem] = append(t.Loads[mem], &MachLoad{
						Op: op, Dst: dst, Mem: mem, RegAddrParam: -1,
						MemParam: paramIndex(op.Params, rhs.Param), AROption: opt, ARSub: arSub, ARStorage: ar,
					})
					return
				}
			}
			if src, ok := t.classifyOperand(asg.RHS, op.Params); ok {
				t.Movs = append(t.Movs, &MachMov{Op: op, Dst: dst, Src: src})
			}
			return
		default:
			// Extension-wrapped immediates (RISC li: RF[d] <- sext(i, w)).
			if src, ok := t.classifyOperand(asg.RHS, op.Params); ok {
				t.Movs = append(t.Movs, &MachMov{Op: op, Dst: dst, Src: src})
			}
			return
		}
	}

	// Stores.
	if val, ok := func() (int, bool) {
		return regIndexParam(asg.RHS, t.RF, op.Params)
	}(); ok {
		if ix, isIx := asg.LHS.(*isdl.Index); isIx {
			if a, off, okA := t.regOffsetAddr(ix.Idx, op.Params); okA {
				t.Stores[ix.Name] = append(t.Stores[ix.Name], &MachStore{
					Op: op, Val: val, Mem: ix.Name, RegAddrParam: a, OffParam: off, MemParam: -1,
				})
				return
			}
		}
		if ref, isRef := asg.LHS.(*isdl.Ref); isRef && ref.Param != nil && ref.Param.NT != nil {
			if opt, arSub, mem, ar, ok := memNTOption(ref.Param.NT); ok {
				t.Stores[mem] = append(t.Stores[mem], &MachStore{
					Op: op, Val: val, Mem: mem, RegAddrParam: -1,
					MemParam: paramIndex(op.Params, ref.Param), AROption: opt, ARSub: arSub, ARStorage: ar,
				})
				return
			}
		}
	}

	// SetAR: AR[a] <- f(RF[s]).
	if ix, ok := asg.LHS.(*isdl.Index); ok && ix.Storage != t.RF && ix.Storage.Kind == isdl.StRegFile {
		arRef, okA := ix.Idx.(*isdl.Ref)
		if !okA || arRef.Param == nil || arRef.Param.Token == nil {
			return
		}
		var src = -1
		isdl.WalkExpr(asg.RHS, func(e isdl.Expr) {
			if pi, ok := regIndexParam(e, t.RF, op.Params); ok {
				src = pi
			}
		})
		if src >= 0 {
			t.SetARs[ix.Storage.Name] = append(t.SetARs[ix.Storage.Name], &MachSetAR{
				Op: op, ARStorage: ix.Storage.Name,
				ARParam: paramIndex(op.Params, arRef.Param), SrcParam: src,
			})
		}
	}
}

func (t *Target) classifyBranch(op *isdl.Operation, ifs *isdl.If) {
	asg, ok := ifs.Then[0].(*isdl.Assign)
	if !ok {
		return
	}
	lref, ok := asg.LHS.(*isdl.Ref)
	if !ok || lref.Storage == nil || lref.Storage.Kind != isdl.StProgramCounter {
		return
	}
	tref, ok := asg.RHS.(*isdl.Ref)
	if !ok || tref.Param == nil || tref.Param.Token == nil || tref.Param.Token.Kind != isdl.TokImm {
		return
	}
	target := paramIndex(op.Params, tref.Param)

	cond, ok := ifs.Cond.(*isdl.Binary)
	if !ok {
		return
	}
	a, okA := regIndexParam(cond.X, t.RF, op.Params)
	if !okA {
		return
	}
	if b, okB := regIndexParam(cond.Y, t.RF, op.Params); okB && cond.Op == "==" {
		t.Branches = append(t.Branches, &MachBranch{Op: op, Kind: BrEQPair, A: a, B: b, Target: target})
		return
	}
	if lit, okL := cond.Y.(*isdl.Lit); okL && lit.Val.IsZero() {
		switch cond.Op {
		case "==":
			t.Branches = append(t.Branches, &MachBranch{Op: op, Kind: BrZ, A: a, B: -1, Target: target})
		case "!=":
			t.Branches = append(t.Branches, &MachBranch{Op: op, Kind: BrNZ, A: a, B: -1, Target: target})
		}
	}
}

// benignSideEffects reports whether the operation's side effects touch only
// control registers (condition flags). Flag updates do not disturb compiled
// code, which never reads them.
func benignSideEffects(d *isdl.Description, op *isdl.Operation) bool {
	for _, s := range op.SideEffect {
		asg, ok := s.(*isdl.Assign)
		if !ok {
			return false
		}
		if !writesControlReg(d, asg.LHS) {
			return false
		}
	}
	return true
}

func writesControlReg(d *isdl.Description, e isdl.Expr) bool {
	switch e := e.(type) {
	case *isdl.Ref:
		if e.Storage != nil {
			return e.Storage.Kind == isdl.StControlRegister
		}
		if e.AliasTo != nil {
			st, ok := d.StorageByName[e.AliasTo.Target]
			return ok && st.Kind == isdl.StControlRegister
		}
	case *isdl.SliceE:
		return writesControlReg(d, e.X)
	}
	return false
}

// branchOf returns the first branch of the wanted kind, or nil.
func (t *Target) branchOf(kind BranchKind) *MachBranch {
	for _, b := range t.Branches {
		if b.Kind == kind {
			return b
		}
	}
	return nil
}
