package compiler_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/xsim"
)

// compileAndRun compiles a kernel for the machine, assembles the output and
// runs it to completion.
func compileAndRun(t *testing.T, d *isdl.Description, src string) (*xsim.Simulator, string) {
	t.Helper()
	asmText, err := compiler.Compile(d, src)
	if err != nil {
		t.Fatalf("compile for %s: %v", d.Name, err)
	}
	p, err := asm.Assemble(d, asmText)
	if err != nil {
		t.Fatalf("generated assembly does not assemble: %v\n%s", err, asmText)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1_000_000); err != nil {
		t.Fatalf("run: %v\n%s", err, asmText)
	}
	if !sim.Halted() {
		t.Fatalf("compiled program did not halt\n%s", asmText)
	}
	return sim, asmText
}

// varReg finds the register assigned to the i-th declared variable
// (allocation is top-down, so variable 0 lives in the highest register).
func varValue(sim *xsim.Simulator, rfDepth, i int) uint64 {
	return sim.State().Get("RF", rfDepth-1-i).Uint64()
}

func targets(t *testing.T) []*isdl.Description {
	t.Helper()
	return []*isdl.Description{machines.Toy(), machines.SPAM(), machines.SPAM2()}
}

func TestCompileArithmetic(t *testing.T) {
	src := `
var x, y, z;
x = 7;
y = x + 5;
z = y - x + (x & 6);
`
	for _, d := range targets(t) {
		t.Run(d.Name, func(t *testing.T) {
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			if got := varValue(sim, depth, 0); got != 7 {
				t.Errorf("x = %d", got)
			}
			if got := varValue(sim, depth, 1); got != 12 {
				t.Errorf("y = %d", got)
			}
			if got := varValue(sim, depth, 2); got != 11 { // 5 + (7&6)=6
				t.Errorf("z = %d", got)
			}
		})
	}
}

func TestCompileControlFlow(t *testing.T) {
	src := `
var i, s;
s = 0;
for i = 1 to 10 { s = s + i; }
if (s == 55) { s = s + 100; } else { s = 0; }
while (i > 5) { i = i - 2; }
`
	for _, d := range targets(t) {
		t.Run(d.Name, func(t *testing.T) {
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			if got := varValue(sim, depth, 1); got != 155 {
				t.Errorf("s = %d, want 155", got)
			}
			// i leaves the for loop at 11, then drops by 2 to 5 or below.
			if got := varValue(sim, depth, 0); got != 5 {
				t.Errorf("i = %d, want 5", got)
			}
		})
	}
}

func TestCompileComparisons(t *testing.T) {
	src := `
var a, b, r;
a = 3; b = 9; r = 0;
if (a < b)  { r = r + 1; }
if (b < a)  { r = r + 10; }
if (a <= 3) { r = r + 2; }
if (a >= 3) { r = r + 4; }
if (a != b) { r = r + 8; }
if (a > b)  { r = r + 20; }
`
	for _, d := range targets(t) {
		t.Run(d.Name, func(t *testing.T) {
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			if got := varValue(sim, depth, 2); got != 15 {
				t.Errorf("r = %d, want 15", got)
			}
		})
	}
}

func TestCompileNegativeCompare(t *testing.T) {
	src := `
var a, r;
a = 0 - 5;
r = 0;
if (a < 3) { r = 1; }
`
	for _, d := range targets(t) {
		t.Run(d.Name, func(t *testing.T) {
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			if got := varValue(sim, depth, 1); got != 1 {
				t.Errorf("r = %d: -5 < 3 should hold", got)
			}
		})
	}
}

func arrayStorageFor(d *isdl.Description) string {
	switch d.Name {
	case "toy":
		return "DMEM"
	case "spam":
		return "DMX"
	default:
		return "DM"
	}
}

func TestCompileArrays(t *testing.T) {
	for _, d := range targets(t) {
		t.Run(d.Name, func(t *testing.T) {
			mem := arrayStorageFor(d)
			src := `
var i, s;
array a[8] in ` + mem + ` at 4 = { 3, 1, 4, 1, 5, 9, 2, 6 };
array b[8] in ` + mem + ` at 16;
s = 0;
for i = 0 to 7 {
  b[i] = a[i] + 1;
  s = s + a[i];
}
`
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			if got := varValue(sim, depth, 1); got != 31 {
				t.Errorf("s = %d, want 31", got)
			}
			want := []uint64{4, 2, 5, 2, 6, 10, 3, 7}
			for i, w := range want {
				if got := sim.State().Get(mem, 16+i).Uint64(); got != w {
					t.Errorf("b[%d] = %d, want %d", i, got, w)
				}
			}
		})
	}
}

// TestCompileSpill forces more variables than the toy register file holds.
func TestCompileSpill(t *testing.T) {
	src := `
var v0, v1, v2, v3, v4, v5, v6, v7, v8, v9;
v0 = 1; v1 = 2; v2 = 3; v3 = 4; v4 = 5;
v5 = 6; v6 = 7; v7 = 8; v8 = 9; v9 = 10;
v0 = v8 + v9;
v9 = v0 + v1;
`
	d := machines.Toy()
	sim, asmText := compileAndRun(t, d, src)
	if !strings.Contains(asmText, ".data DMEM") {
		t.Fatalf("expected spill slots in DMEM:\n%s", asmText)
	}
	// v0 lives in the highest register; v9 is spilled. Verify v0 = 19 and
	// the spilled v9 = 21 via the whole-machine effect: reload it.
	depth := d.StorageByName["RF"].Depth
	if got := varValue(sim, depth, 0); got != 19 {
		t.Errorf("v0 = %d, want 19", got)
	}
	// The spill slot for v9 sits in DMEM near the top; find value 21.
	found := false
	st := d.StorageByName["DMEM"]
	for i := st.Depth - 16; i < st.Depth; i++ {
		if sim.State().Get("DMEM", i).Uint64() == 21 {
			found = true
		}
	}
	if !found {
		t.Error("spilled v9 = 21 not found in spill area")
	}
}

// TestCompileMulWhereAvailable uses * on machines with a multiplier pattern
// (toy has mul; SPAM's MAC writes ACC, not RF, so it is not classified).
func TestCompileMulWhereAvailable(t *testing.T) {
	src := `
var x;
x = 6 * 7;
`
	d := machines.Toy()
	sim, _ := compileAndRun(t, d, src)
	depth := d.StorageByName["RF"].Depth
	if got := varValue(sim, depth, 0); got != 42 {
		t.Errorf("x = %d, want 42", got)
	}
}

// TestVLIWPacking: on SPAM the scheduler should pack independent operations
// into one long instruction at least once.
func TestVLIWPacking(t *testing.T) {
	src := `
var a, b, c, d;
a = 1;
b = 2;
c = a + 3;
d = b - 1;
`
	d := machines.SPAM()
	_, asmText := compileAndRun(t, d, src)
	if !strings.Contains(asmText, "||") {
		t.Errorf("no VLIW packing on SPAM:\n%s", asmText)
	}
}

// TestSchedulingPreservesOrder: dependent chains must not pack together.
func TestSchedulingPreservesOrder(t *testing.T) {
	src := `
var a, b;
a = 1;
b = a + 1;
a = b + 1;
b = a + 1;
`
	for _, d := range targets(t) {
		t.Run(d.Name, func(t *testing.T) {
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			if got := varValue(sim, depth, 0); got != 3 {
				t.Errorf("a = %d, want 3", got)
			}
			if got := varValue(sim, depth, 1); got != 4 {
				t.Errorf("b = %d, want 4", got)
			}
		})
	}
}

// TestBigConstants exercises constant construction beyond the immediate
// field on the 32-bit machines.
func TestBigConstants(t *testing.T) {
	src := `
var x, y;
x = 100000;
y = x + 23456;
`
	for _, name := range []string{"spam", "spam2"} {
		var d *isdl.Description
		if name == "spam" {
			d = machines.SPAM()
		} else {
			d = machines.SPAM2()
		}
		t.Run(name, func(t *testing.T) {
			sim, _ := compileAndRun(t, d, src)
			depth := d.StorageByName["RF"].Depth
			mask := uint64(1)<<uint(d.StorageByName["RF"].Width) - 1
			if got := varValue(sim, depth, 0); got != 100000&mask {
				t.Errorf("x = %d, want %d", got, 100000&mask)
			}
			if got := varValue(sim, depth, 1); got != 123456&mask {
				t.Errorf("y = %d, want %d", got, 123456&mask)
			}
		})
	}
}

func TestKernelParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing semi", "var x\nx = 1;"},
		{"bad stmt", "var x; x + 1;"},
		{"unterminated block", "var x; if (x == 0) { x = 1;"},
		{"bad cond", "var x; if (x) { }"},
		{"bad array init", "array a[2] in DM at 0 = { 1, 2, 3 };"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := compiler.ParseKernel(c.src); err == nil {
				t.Fatal("expected parse error")
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	d := machines.SPAM2()
	cases := []struct{ name, src, want string }{
		{"undeclared var", "x = 1;", "undeclared variable"},
		{"undeclared array", "var x; x = a[0];", "undeclared array"},
		{"bad storage", "array a[4] in NOPE at 0; var x; x = a[0];", "not addressed"},
		{"array too big", "array a[9999] in DM at 0; var x; x = a[0];", "exceeds"},
		{"dup var", "var x; var x;", "duplicate variable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := compiler.Compile(d, c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestTargetClassification(t *testing.T) {
	for _, d := range targets(t) {
		tgt, err := compiler.NewTarget(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if tgt.RF.Name != "RF" {
			t.Errorf("%s: chose register file %s", d.Name, tgt.RF.Name)
		}
		if len(tgt.Bins["+"]) == 0 || len(tgt.Bins["-"]) == 0 || len(tgt.Bins["&"]) == 0 {
			t.Errorf("%s: ALU classification incomplete: %v", d.Name, tgt.Bins)
		}
		if tgt.Jump == nil || tgt.Halt == nil || len(tgt.Branches) == 0 {
			t.Errorf("%s: control classification incomplete", d.Name)
		}
		if len(tgt.Loads) == 0 || len(tgt.Stores) == 0 {
			t.Errorf("%s: memory classification incomplete", d.Name)
		}
	}
}

// TestCompileRISC32 exercises the register+offset addressing classification
// (lw/sw with an offset field) and the RISC branch repertoire end to end.
func TestCompileRISC32(t *testing.T) {
	d := machines.RISC32()
	src := `
var i, s, hits;
array a[16] in DMEM at 8 = { 12, 7, 3, 25, 14, 9, 31, 2, 18, 6, 11, 27, 4, 15, 22, 8 };
s = 0;
hits = 0;
for i = 0 to 15 {
  s = s + a[i];
  if (a[i] > 13) { hits = hits + 1; }
}
`
	sim, asmText := compileAndRun(t, d, src)
	if !strings.Contains(asmText, "lw") || !strings.Contains(asmText, "0(") {
		t.Fatalf("expected offset loads in generated code:\n%s", asmText)
	}
	depth := d.StorageByName["RF"].Depth
	if got := varValue(sim, depth, 1); got != 214 {
		t.Errorf("s = %d, want 214", got)
	}
	if got := varValue(sim, depth, 2); got != 7 {
		t.Errorf("hits = %d, want 7", got)
	}
}

// TestCompileRISC32BigConstants: li covers 16 bits; larger constants build
// through shifts.
func TestCompileRISC32BigConstants(t *testing.T) {
	d := machines.RISC32()
	sim, _ := compileAndRun(t, d, "var x; x = 1000000;")
	depth := d.StorageByName["RF"].Depth
	if got := varValue(sim, depth, 0); got != 1000000 {
		t.Errorf("x = %d", got)
	}
}

// TestPackingDifferential is the scheduler's correctness test: for every
// machine and kernel, the VLIW-packed program and the one-operation-per-
// instruction program must leave identical architectural state (packing may
// only change timing, never results).
func TestPackingDifferential(t *testing.T) {
	kernels := []string{
		"var a, b, c, d; a = 1; b = 2; c = a + 3; d = b - 1; a = c + d;",
		`
var i, s, t;
s = 0; t = 1;
for i = 0 to 9 { s = s + i; t = t + s; }
if (s > t) { s = t; } else { t = s; }
`,
	}
	all := append(targets(t), machines.RISC32())
	for _, d := range all {
		for ki, kernel := range kernels {
			packed, err := compiler.CompileWithOptions(d, kernel, compiler.Options{})
			if err != nil {
				t.Fatalf("%s kernel %d: %v", d.Name, ki, err)
			}
			serial, err := compiler.CompileWithOptions(d, kernel, compiler.Options{NoPacking: true})
			if err != nil {
				t.Fatalf("%s kernel %d: %v", d.Name, ki, err)
			}
			run := func(src string) map[string][]uint64 {
				p, err := asm.Assemble(d, src)
				if err != nil {
					t.Fatalf("%s kernel %d: %v\n%s", d.Name, ki, err, src)
				}
				sim := xsim.New(d)
				if err := sim.Load(p); err != nil {
					t.Fatal(err)
				}
				if err := sim.Run(1_000_000); err != nil {
					t.Fatal(err)
				}
				out := map[string][]uint64{}
				rf := d.StorageByName["RF"]
				regs := make([]uint64, rf.Depth)
				for i := range regs {
					regs[i] = sim.State().Get("RF", i).Uint64()
				}
				out["RF"] = regs
				return out
			}
			a, b := run(packed), run(serial)
			for i := range a["RF"] {
				if a["RF"][i] != b["RF"][i] {
					t.Fatalf("%s kernel %d: RF[%d] differs: packed %d vs serial %d\npacked:\n%s\nserial:\n%s",
						d.Name, ki, i, a["RF"][i], b["RF"][i], packed, serial)
				}
			}
		}
	}
}
