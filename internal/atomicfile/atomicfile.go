// Package atomicfile is the one home of the temp+fsync+rename atomic
// write pattern used everywhere a file must never be observed half
// written: stage-cache persistence (internal/core), the gensim build
// cache (internal/gensim) and the directory blob store (internal/blob).
// A crash or kill mid-write leaves either the old file or the new one —
// never a truncated file that would poison the next reader.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteTo streams the callback's output into path atomically: the bytes
// go to a temporary file in the same directory (rename is only atomic
// within one filesystem), are fsynced, and the temporary file is renamed
// over the target with the requested permissions. On any error — from
// the callback, the sync, or the rename — the temporary file is removed
// and the target is left untouched.
func WriteTo(path string, perm os.FileMode, write func(io.Writer) error) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	return nil
}

// WriteFile writes data to path atomically (see WriteTo).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
