package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v; want hello", got, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("perm = %v, want 0644", fi.Mode().Perm())
	}
	// Overwrite replaces the content wholesale.
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("after overwrite = %q, want v2", got)
	}
}

// TestPartialWriteLeavesTargetIntact is the truncated/partial-write
// regression test: a writer that emits half its output and then fails
// must leave the previous file byte-identical and must not litter the
// directory with temporaries.
func TestPartialWriteLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	if err := WriteFile(path, []byte("good old content"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		if _, err := w.Write([]byte(`{"version":2,"stages":{"compile":[`)); err != nil {
			return err
		}
		return boom // crash mid-document
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteTo error = %v, want wrapped %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good old content" {
		t.Fatalf("target after failed write = %q, %v; want old content intact", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cache.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory litter after failed write: %v", names)
	}
}

// A failed first write must not create the target at all.
func TestPartialWriteCreatesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.bin")
	err := WriteTo(path, 0o755, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return errors.New("interrupted")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("target exists after failed first write (stat err %v)", err)
	}
}
