// Package repro reproduces "A Methodology for Accurate Performance
// Evaluation in Architecture Exploration" (Hadjiyiannis, Russo, Devadas;
// DAC 1999): the ISDL machine description language and the design-evaluation
// tools generated from it — a cycle-accurate bit-true instruction-level
// simulator (GENSIM/XSIM), a hardware implementation model with die size,
// cycle length and power (HGEN), a retargetable assembler/disassembler, a
// retargetable compiler, and the architecture-exploration loop that ties
// them together.
//
// This package is the stable facade over the implementation packages:
//
//	desc, err := repro.ParseISDL(src)          // §2  ISDL
//	prog, err := repro.Assemble(desc, asmText) // retargetable assembler
//	sim := repro.NewSimulator(desc)            // §3  GENSIM/XSIM
//	hw, err := repro.Synthesize(desc, nil)     // §4  HGEN
//	eval, err := repro.Evaluate(desc, prog)    // the paper's methodology
//
// Ready-made machines live in Machines(): the paper's SPAM and SPAM2, a
// small teaching machine ("toy"), and a single-issue RISC ("risc32"). See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the Table 1 /
// Table 2 reproduction.
package repro

import (
	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/tech"
	"repro/internal/xsim"
)

// Re-exported core types. The aliases make the internal packages' documented
// types part of the public surface without duplicating them.
type (
	// Description is a parsed, validated ISDL machine description.
	Description = isdl.Description
	// Program is an assembled program image.
	Program = asm.Program
	// Simulator is a generated cycle-accurate, bit-true ILS.
	Simulator = xsim.Simulator
	// Session is the simulator's command/batch interface.
	Session = xsim.Session
	// Stats are the simulator's utilization statistics.
	Stats = xsim.Stats
	// Synthesis is the HGEN hardware implementation model.
	Synthesis = hgen.Result
	// SynthesisOptions configure HGEN (sharing mode, decode style).
	SynthesisOptions = hgen.Options
	// Library is a technology cost model.
	Library = tech.Library
	// Evaluation combines simulator and hardware figures for one
	// candidate and workload.
	Evaluation = core.Evaluation
	// Explorer drives architecture exploration by iterative improvement.
	//
	// Deprecated: use NewExploration with options (explore.WithBeam,
	// explore.WithRestarts, ...); the flat struct only reaches the
	// hill-climb strategy and remains for one release of grace.
	Explorer = explore.Explorer
	// ExplorationConfig is the option-built exploration configuration
	// behind NewExploration.
	ExplorationConfig = explore.Config
	// ExplorationOption configures NewExploration (explore.WithWorkers,
	// explore.WithBeam, explore.WithRestarts, ...).
	ExplorationOption = explore.Option
	// SearchStrategy picks the exploration walk: explore.HillClimb,
	// explore.Beam or explore.Restarts.
	SearchStrategy = explore.Strategy
	// ExplorationResult is an exploration run's history and outcome.
	ExplorationResult = explore.Result
)

// NewExploration builds an architecture exploration over a base ISDL
// description and kernel. Without options it hill-climbs with default
// weights; see package explore for the strategy and tuning options:
//
//	res, err := repro.NewExploration(base, kernel,
//	        explore.WithBeam(4), explore.WithRestarts(3, 1)).Run()
func NewExploration(base, kernel string, opts ...ExplorationOption) *ExplorationConfig {
	return explore.New(base, kernel, opts...)
}

// ParseISDL parses and validates an ISDL description (paper §2; grammar in
// docs/ISDL.md).
func ParseISDL(src string) (*Description, error) { return isdl.Parse(src) }

// FormatISDL renders a description back to ISDL source text.
func FormatISDL(d *Description) string { return isdl.Format(d) }

// Assemble assembles text for the described machine.
func Assemble(d *Description, src string) (*Program, error) { return asm.Assemble(d, src) }

// MarshalProgram and UnmarshalProgram exchange the XBIN object format.
func MarshalProgram(p *Program) []byte { return asm.Marshal(p) }

// UnmarshalProgram parses XBIN text against a description.
func UnmarshalProgram(d *Description, data []byte) (*Program, error) {
	return asm.Unmarshal(d, data)
}

// Disassemble renders a whole program as re-assemblable text.
func Disassemble(p *Program) string { return asm.DisassembleProgram(p) }

// NewSimulator builds the generated instruction-level simulator (§3).
func NewSimulator(d *Description) *Simulator { return xsim.New(d) }

// LSI10K returns the default technology library (the LSI 10K flavoured cost
// model behind Table 2).
func LSI10K() *Library { return tech.LSI10K() }

// DefaultSynthesisOptions is the paper's configuration: full resource
// sharing, two-level decode, Verilog emission.
func DefaultSynthesisOptions() SynthesisOptions { return hgen.DefaultOptions() }

// Synthesize runs HGEN (§4). A nil library selects LSI10K.
func Synthesize(d *Description, lib *Library, opts SynthesisOptions) (*Synthesis, error) {
	if lib == nil {
		lib = tech.LSI10K()
	}
	return hgen.Synthesize(d, lib, opts)
}

// Compile compiles kernel-language source (see internal/compiler) to
// assembly for the described machine.
func Compile(d *Description, kernel string) (string, error) { return compiler.Compile(d, kernel) }

// Evaluate runs the paper's methodology for one candidate and workload.
func Evaluate(d *Description, p *Program, workload string) (*Evaluation, error) {
	return core.NewEvaluator().Evaluate(d, p, workload)
}

// Machines returns the bundled ISDL descriptions by name — the machine zoo:
// "toy" (a small teaching machine), "spam" (the paper's 4-way VLIW with 3
// parallel moves), "spam2" (the simpler 3-way VLIW), "risc32" (a
// single-issue load/store RISC) and "riscv5" (a 5-stage pipelined RISC with
// load-use and branch stalls, demonstrating ISDL's timing model).
func Machines() map[string]string {
	srcs := make(map[string]string)
	for _, e := range machines.Zoo() {
		srcs[e.Name] = e.Source
	}
	return srcs
}
