package repro

// One benchmark per table of the paper's evaluation (§6), plus the ablation
// benches DESIGN.md defines. The same measurements, formatted as the paper's
// tables, come from `go run ./cmd/paper`; EXPERIMENTS.md records both.
//
//	go test -bench=. -benchmem

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/cosim"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/tech"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

// --- Table 1: simulation speed, XSIM ILS vs synthesizable Verilog ---------

func firSetup(b *testing.B) (*isdl.Description, *asm.Program) {
	b.Helper()
	d, p, err := experiments.FIRWorkload(16, 48)
	if err != nil {
		b.Fatal(err)
	}
	return d, p
}

func benchILS(b *testing.B, compiled bool) {
	d, p := firSetup(b)
	sim := xsim.New(d)
	sim.CompiledCore = compiled
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		if err := sim.Load(p); err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		cycles += sim.Cycle()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkTable1_XSIM measures the generated instruction-level simulator on
// the SPAM FIR workload (the fast row of Table 1).
func BenchmarkTable1_XSIM(b *testing.B) { benchILS(b, true) }

// BenchmarkTable1_XSIMInterpreted measures the AST-interpreting core — the
// baseline for the paper's §6.2 compiled-code-simulator projection.
func BenchmarkTable1_XSIMInterpreted(b *testing.B) { benchILS(b, false) }

// BenchmarkTable1_VerilogModel measures event-driven simulation of the
// HGEN-generated Verilog running the same workload (the slow row of
// Table 1; the paper used Verilog-XL). Each sub-benchmark fans b.N whole
// workloads over a cosim.Pool at a different worker count; comparing the
// cycles/sec metric across the workers=1 and workers=N rows is the honest
// wall-clock parallel speedup, while measured-speedup is the pool's own
// summed-sim-time-over-wall figure (these agree when cores are free and
// diverge under oversubscription — see EXPERIMENTS.md).
func BenchmarkTable1_VerilogModel(b *testing.B) {
	d, p := firSetup(b)
	r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	mod, err := verilog.Parse(r.VerilogText)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int) {
		pool := &cosim.Pool{Workers: workers}
		w := cosim.Workload{
			Mod:  mod,
			Init: func(hw *verilog.Sim) error { return experiments.LoadProgram(hw, p) },
		}
		b.ResetTimer()
		stats, err := pool.Run("bench.table1.verilog", b.N, func(i int, l *cosim.Lane) error {
			_, err := w.Run(l)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.AggregateCyclesPerSec(), "cycles/sec")
		b.ReportMetric(stats.Speedup(), "measured-speedup")
	}
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) { run(b, workers) })
	}
}

// --- Table 2: hardware synthesis statistics --------------------------------

func benchSynth(b *testing.B, d *isdl.Description) {
	var last *hgen.Result
	for i := 0; i < b.N; i++ {
		r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.CycleNs, "cycle-ns")
	b.ReportMetric(float64(last.VerilogLines), "verilog-lines")
	b.ReportMetric(last.AreaCells, "die-cells")
}

// BenchmarkTable2_HGEN_SPAM regenerates the SPAM row of Table 2 (the ns/op
// time is the "synthesis time" column).
func BenchmarkTable2_HGEN_SPAM(b *testing.B) { benchSynth(b, machines.SPAM()) }

// BenchmarkTable2_HGEN_SPAM2 regenerates the SPAM2 row of Table 2.
func BenchmarkTable2_HGEN_SPAM2(b *testing.B) { benchSynth(b, machines.SPAM2()) }

// --- Ablation A: resource sharing (Figure 5) -------------------------------

func benchSharing(b *testing.B, mode hgen.SharingMode) {
	d := machines.SPAM()
	var area, datapath float64
	for i := 0; i < b.N; i++ {
		r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.Options{Sharing: mode, Decode: hgen.DecodeTwoLevel})
		if err != nil {
			b.Fatal(err)
		}
		area = r.AreaCells
		datapath = r.Breakdown["datapath"] + r.Breakdown["operand muxes"]
	}
	b.ReportMetric(area, "die-cells")
	b.ReportMetric(datapath, "datapath-cells")
}

func BenchmarkAblation_SharingOff(b *testing.B)   { benchSharing(b, hgen.ShareOff) }
func BenchmarkAblation_SharingRules(b *testing.B) { benchSharing(b, hgen.ShareRules) }
func BenchmarkAblation_SharingFull(b *testing.B)  { benchSharing(b, hgen.ShareRulesAndConstraints) }

// --- Ablation B: decode style (§4.2) ----------------------------------------

func benchDecode(b *testing.B, style hgen.DecodeStyle) {
	d := machines.SPAM()
	var area float64
	for i := 0; i < b.N; i++ {
		r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.Options{Sharing: hgen.ShareRulesAndConstraints, Decode: style})
		if err != nil {
			b.Fatal(err)
		}
		area = r.Breakdown["decode"]
	}
	b.ReportMetric(area, "decode-cells")
}

func BenchmarkAblation_DecodeTwoLevel(b *testing.B)   { benchDecode(b, hgen.DecodeTwoLevel) }
func BenchmarkAblation_DecodeComparator(b *testing.B) { benchDecode(b, hgen.DecodeComparator) }

// --- Ablation C: stall model (§3.3.3) ---------------------------------------

func benchStalls(b *testing.B, model bool) {
	const n = 32
	x, y := machines.VecTestVectors(n)
	d := machines.SPAM()
	p, err := asm.Assemble(d, machines.DotSPAM(n, x, y))
	if err != nil {
		b.Fatal(err)
	}
	sim := xsim.New(d)
	sim.StallModel = model
	var cycles, stalls uint64
	for i := 0; i < b.N; i++ {
		if err := sim.Load(p); err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		cycles = sim.Cycle()
		stalls = sim.Stats().DataStalls
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(stalls), "data-stalls")
}

func BenchmarkAblation_StallsOn(b *testing.B)  { benchStalls(b, true) }
func BenchmarkAblation_StallsOff(b *testing.B) { benchStalls(b, false) }

// --- Infrastructure benches -------------------------------------------------

// BenchmarkAssembleFIR measures the retargetable assembler.
func BenchmarkAssembleFIR(b *testing.B) {
	const taps, nout = 16, 48
	samples, coefs := machines.FIRTestVectors(taps, nout)
	d := machines.SPAM()
	src := machines.FIRSPAM(taps, nout, samples, coefs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(d, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseISDL measures the description front end.
func BenchmarkParseISDL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := isdl.Parse(machines.SPAMSource); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exploration engine (Figure 1 loop) --------------------------------------

// benchExplore measures the whole iterative-improvement loop on SPAM —
// every neighbour candidate runs the full parse → compile → assemble →
// simulate → synthesize pipeline — under the given concurrency and
// memoization knobs, optionally with the full fleet-telemetry stack: a
// live obs.Registry collecting every metric and span, a flight recorder
// ring, and a background sampler ticking at the dashboard's default
// 1-second interval. All variants produce bit-identical results
// (asserted by TestExploreParallelDeterministic,
// TestExploreInstrumentedExactCounters and
// TestExploreFleetTelemetryBitIdentical).
func benchExplore(b *testing.B, workers int, cached, instrumented bool, extra ...explore.Option) {
	const kernel = "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n"
	b.ResetTimer()
	var evaluated int
	for i := 0; i < b.N; i++ {
		opts := []explore.Option{
			explore.WithMaxIters(3),
			explore.WithWorkers(workers),
		}
		if !cached {
			opts = append(opts, explore.WithoutCache())
		}
		if instrumented {
			reg := obs.NewRegistry()
			reg.AttachFlight(obs.NewFlightRecorder(256))
			sampler := obs.NewSampler(reg, time.Second, 360)
			sampler.Start()
			defer sampler.Stop()
			opts = append(opts, explore.WithObs(reg))
		}
		opts = append(opts, extra...)
		res, err := explore.New(machines.SPAMSource, kernel, opts...).Run()
		if err != nil {
			b.Fatal(err)
		}
		evaluated = len(res.Steps)
	}
	b.ReportMetric(float64(evaluated), "candidates")
}

// BenchmarkExplore_SPAM is the exploration-throughput benchmark: the
// sequential/uncached row is the pre-PR baseline, the parallel/cached row
// the full engine. The -obs rows run with a live metrics registry —
// compare par-cache with par-cache-obs for the instrumentation overhead
// (budgeted at ≤ 5%).
func BenchmarkExplore_SPAM(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchExplore(b, 1, false, false) })
	b.Run("seq-cache", func(b *testing.B) { benchExplore(b, 1, true, false) })
	b.Run("par", func(b *testing.B) { benchExplore(b, runtime.NumCPU(), false, false) })
	b.Run("par-cache", func(b *testing.B) { benchExplore(b, runtime.NumCPU(), true, false) })
	b.Run("par-cache-obs", func(b *testing.B) { benchExplore(b, runtime.NumCPU(), true, true) })
	b.Run("beam4-par-cache", func(b *testing.B) {
		benchExplore(b, runtime.NumCPU(), true, false, explore.WithBeam(4))
	})
}

// --- Extension: §6.2 pipeline retiming ---------------------------------------

// BenchmarkExtension_RetimeSPAM measures the pipeline optimizer driving SPAM
// toward a 60 ns cycle (the achieved cycle is reported as a metric).
func BenchmarkExtension_RetimeSPAM(b *testing.B) {
	d := machines.SPAM()
	var achieved float64
	for i := 0; i < b.N; i++ {
		res, err := hgen.RetimeForCycle(d, tech.LSI10K(), 60)
		if err != nil {
			b.Fatal(err)
		}
		achieved = res.CycleNs
	}
	b.ReportMetric(achieved, "cycle-ns")
}

// BenchmarkCompileKernel measures the retargetable compiler on a small
// kernel across the bundled machines.
func BenchmarkCompileKernel(b *testing.B) {
	const kernel = `
var i, s;
array a[16] in DM at 0 = { 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16 };
s = 0;
for i = 0 to 15 { s = s + a[i]; }
`
	d := machines.SPAM2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(d, kernel); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Suite: per-kernel MIPS across the machine zoo (ROADMAP item 4) -------

// BenchmarkSuite measures every registered suite workload on every zoo
// machine the toolchain can target (compiled backend), reporting MIPS per
// pair. The sub-benchmark rows land in the -bench-json trajectory
// (BENCH_10.json), making the suite the standing perf yardstick.
func BenchmarkSuite(b *testing.B) {
	for _, w := range suite.All(suite.Filter{}) {
		for _, m := range machines.ZooNames() {
			if w.Machine != "" && w.Machine != m {
				continue // asm workload pinned to one machine
			}
			w, m := w, m
			b.Run(w.Name+"/"+m, func(b *testing.B) {
				d, err := machines.ByName(m)
				if err != nil {
					b.Fatal(err)
				}
				// One verified run first: a yardstick that measures wrong
				// answers fast is no yardstick.
				if _, err := suite.RunOn(w, d, m, suite.Options{}); err != nil {
					var u *suite.Unsupported
					if errors.As(err, &u) {
						b.Skipf("unsupported: %v", u.Err)
					}
					b.Fatal(err)
				}
				p, _, _, err := suite.Prepare(w, d)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var instrs uint64
				for i := 0; i < b.N; i++ {
					eng, _, err := xsim.NewEngine(d, xsim.BackendCompiled)
					if err != nil {
						b.Fatal(err)
					}
					if err := eng.Load(p); err != nil {
						b.Fatal(err)
					}
					if err := eng.Run(0); err != nil {
						b.Fatal(err)
					}
					instrs += eng.Stats().Instructions
					eng.Close()
				}
				b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "MIPS")
			})
		}
	}
}
