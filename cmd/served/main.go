// Command served is exploration-as-a-service: an HTTP daemon that runs
// pipeline evaluations from a bounded job queue against a shared
// content-addressed artifact store, and serves that store to remote
// explorers (cmd/explore -store http://HOST).
//
// Usage:
//
//	served [-addr :8344] [-store dir:PATH|mem] [-jobs n] [-queue n]
//	       [-sim-backend interp|compiled|aot] [-sample-every 1s]
//	       [-flight 256] [-pprof]
//
// Endpoints (docs/SERVICE.md is the full contract):
//
//	POST /v1/jobs                submit an evaluation; 202 {id} or
//	                             retryable 503 when the queue is full.
//	                             An X-Repro-Trace header propagates the
//	                             client's trace context into the daemon's
//	                             spans.
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/result    the Evaluation once status is done,
//	                             plus the job's daemon-side spans for
//	                             cross-process trace merging
//	     /v1/blobs/{ns}/{key}    the shared artifact store (GET/PUT/HEAD)
//	GET  /healthz, /metrics      liveness and the obs registry as JSON;
//	                             ?format=prom for Prometheus text
//	                             exposition, ?format=text for the summary
//	GET  /dash, /dash/data       live dashboard (single-file HTML) and
//	                             its sampled time-series JSON
//	GET  /debug/flight           the last N completed spans (flight
//	                             recorder); also dumped to stderr on
//	                             SIGQUIT
//	     /debug/pprof/           continuous profiling, only with -pprof
//
// On SIGINT/SIGTERM the daemon drains: new submits are rejected with a
// retryable 503, in-flight evaluations run to completion (their
// artifacts land in the store), still-queued jobs flip to status
// "retry", and only then does the process exit. Blobs are written
// atomically, so a kill mid-drain never leaves a partial artifact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/blob"
	"repro/internal/gensim"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storeSpec := flag.String("store", "dir:served-store", "artifact store: dir:PATH, mem, or http://HOST (chain to another daemon)")
	workers := flag.Int("jobs", runtime.NumCPU(), "concurrent evaluation workers")
	queueCap := flag.Int("queue", 64, "pending-job bound; submits beyond it get a retryable 503")
	simBackend := flag.String("sim-backend", "", "simulator backend for evaluations: interp, compiled (default) or aot")
	drainWait := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for open HTTP connections")
	sampleEvery := flag.Duration("sample-every", time.Second, "dashboard sampling interval")
	sampleWindow := flag.Int("sample-window", 360, "samples kept for the dashboard")
	flightCap := flag.Int("flight", 256, "flight-recorder capacity (last N completed spans)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	st, err := blob.Open(*storeSpec)
	if err != nil {
		log.Fatalln("served:", err)
	}
	gensim.SetStore(st) // aot simulator binaries share the store too
	reg := obs.NewRegistry()
	srv, err := newServer(st, reg, serverConfig{
		workers:    *workers,
		queueCap:   *queueCap,
		simBackend: *simBackend,
		sampleEvry: *sampleEvery,
		sampleWin:  *sampleWindow,
		flightCap:  *flightCap,
		pprof:      *pprofOn,
	})
	if err != nil {
		log.Fatalln("served:", err)
	}
	srv.start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Println("served: draining (new submits rejected, in-flight jobs finishing)")
		srv.beginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Println("served: shutdown:", err)
		}
	}()
	// SIGQUIT dumps the flight recorder — the last N completed spans —
	// to stderr without stopping the daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "served: flight recorder dump (SIGQUIT):")
			if err := srv.flight.WriteJSON(os.Stderr); err != nil {
				log.Println("served: flight dump:", err)
			}
		}
	}()

	log.Printf("served: listening on %s, store %s, %d workers, queue %d", *addr, *storeSpec, *workers, *queueCap)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalln("served:", err)
	}
	srv.closeAndWait()
	done := reg.Counter("served.jobs.done").Value()
	retried := reg.Counter("served.jobs.retried").Value()
	fmt.Fprintf(os.Stderr, "served: drained (%d jobs done, %d requeued for retry)\n", done, retried)
}
