package main

// Behavioral tests for the service: the submit→status→result lifecycle
// against the real pipeline (with a cached second submit), queue
// bounding, drain semantics, the mounted blob tree, and request
// validation. Evaluation-free tests stub evalFn so queue mechanics are
// exercised without paying for synthesis.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
)

const testKernel = "var x, y;\nx = 2;\ny = x + 3;\n"

func newTestServer(t *testing.T, workers, queueCap int) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(blob.NewMem(), obs.NewRegistry(), serverConfig{workers: workers, queueCap: queueCap})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, url string, req jobRequest) (int, statusJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return resp.StatusCode, out
}

func getStatus(t *testing.T, url, id string) statusJSON {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, url, id string) statusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, id)
		switch st.Status {
		case statusDone, statusFailed, statusRetry:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return statusJSON{}
}

// TestSubmitStatusResult runs the whole lifecycle against the real
// pipeline, then resubmits the identical job and requires it served
// entirely from the shared store (the acceptance criterion's in-process
// form; the CI service job repeats it across two daemon processes).
func TestSubmitStatusResult(t *testing.T) {
	s, ts := newTestServer(t, 1, 8)
	s.start()
	defer s.closeAndWait()

	code, sub := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	if code != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit = %d %+v, want 202 with id", code, sub)
	}
	st := waitDone(t, ts.URL, sub.ID)
	if st.Status != statusDone {
		t.Fatalf("job ended %q (%s), want done", st.Status, st.Error)
	}
	if st.Cached {
		t.Error("first evaluation on an empty store claims cached")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res.Eval == nil {
		t.Fatalf("result = %d eval=%v, want 200 with evaluation", resp.StatusCode, res.Eval)
	}
	if res.Eval.Cycles == 0 {
		t.Error("evaluation reports zero cycles")
	}

	// Identical resubmission: the combine artifact answers from the store.
	_, sub2 := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	st2 := waitDone(t, ts.URL, sub2.ID)
	if st2.Status != statusDone {
		t.Fatalf("second job ended %q (%s)", st2.Status, st2.Error)
	}
	if !st2.Cached {
		t.Error("identical second submit was not served from cache")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	cases := []jobRequest{
		{},                                       // nothing
		{Machine: "toy"},                         // no kernel
		{Kernel: testKernel},                     // no description
		{Machine: "no-such", Kernel: testKernel}, // unknown builtin
		{Machine: "toy", ISDL: "machine x {}", Kernel: testKernel}, // both
	}
	for i, req := range cases {
		if code, _ := postJob(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("case %d: submit = %d, want 400", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// blockingEval parks every evaluation until release is closed, so tests
// control exactly which jobs are in flight.
func blockingEval(release <-chan struct{}) (func(*job, *obs.Span) (*core.Evaluation, bool, error), *sync.WaitGroup) {
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	return func(j *job, _ *obs.Span) (*core.Evaluation, bool, error) {
		once.Do(started.Done)
		<-release
		return &core.Evaluation{}, false, nil
	}, &started
}

// TestQueueFullRejected: with one worker parked and the one queue slot
// taken, a third submit gets a retryable 503 and no job record.
func TestQueueFullRejected(t *testing.T) {
	s, ts := newTestServer(t, 1, 1)
	release := make(chan struct{})
	fn, started := blockingEval(release)
	s.evalFn = fn
	s.start()
	defer func() { close(release); s.closeAndWait() }()

	code1, _ := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	started.Wait() // worker holds job 1
	code2, _ := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	code3, rej := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
		t.Fatalf("first two submits = %d, %d, want 202", code1, code2)
	}
	if code3 != http.StatusServiceUnavailable || !rej.Retryable {
		t.Fatalf("overflow submit = %d %+v, want retryable 503", code3, rej)
	}
	if rej.ID != "" {
		t.Errorf("rejected submit carries a job id %q", rej.ID)
	}
}

// TestGracefulDrain pins the shutdown contract: after beginDrain, new
// submits are rejected retryably, the in-flight job runs to completion,
// and the queued-but-unstarted job flips to "retry" instead of running.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, 1, 4)
	release := make(chan struct{})
	fn, started := blockingEval(release)
	s.evalFn = fn
	s.start()

	_, inflight := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	started.Wait() // worker is inside job 1
	_, queued := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})

	s.beginDrain()
	code, rej := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	if code != http.StatusServiceUnavailable || !rej.Retryable {
		t.Fatalf("submit while draining = %d %+v, want retryable 503", code, rej)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %v %v, want 503", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	close(release) // let the in-flight job finish
	s.closeAndWait()

	if st := getStatus(t, ts.URL, inflight.ID); st.Status != statusDone {
		t.Errorf("in-flight job drained to %q, want done", st.Status)
	}
	st := getStatus(t, ts.URL, queued.ID)
	if st.Status != statusRetry || !st.Retryable {
		t.Errorf("queued job drained to %+v, want retryable retry", st)
	}
	// Its result endpoint must also say retry, not serve an evaluation.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("retry job result = %d, want 503", resp.StatusCode)
	}
}

// TestBlobTreeMounted: the daemon serves its store at /v1/blobs/, so an
// explorer pointed at http://HOST shares artifacts through this process.
func TestBlobTreeMounted(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	remote, err := blob.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	key := blob.KeyOf("served", "mount")
	if err := remote.Put("t.ns", key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get("t.ns", key)
	if err != nil || string(got) != "payload" {
		t.Fatalf("round trip through daemon = %q, %v", got, err)
	}
}

// TestMetricsEndpoint: counters move and export as JSON.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 1, 8)
	s.evalFn = func(*job, *obs.Span) (*core.Evaluation, bool, error) { return &core.Evaluation{}, false, nil }
	s.start()
	defer s.closeAndWait()
	_, sub := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	waitDone(t, ts.URL, sub.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, raw)
	}
	for _, c := range []string{"served.jobs.submitted", "served.jobs.done"} {
		if doc.Counters[c] == 0 {
			t.Errorf("counter %s = 0 after a completed job\n%s", c, raw)
		}
	}
}

// TestOversizeSubmitRejected guards the request body bound.
func TestOversizeSubmitRejected(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	huge := jobRequest{ISDL: strings.Repeat("x", maxRequestBytes+1), Kernel: testKernel}
	body, _ := json.Marshal(huge)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize submit = %d, want 413", resp.StatusCode)
	}
}
