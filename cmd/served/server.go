package main

// The exploration service: a bounded job queue running core.Pipeline
// evaluations against the shared artifact store, behind three JSON
// endpoints (submit/status/result), the blob tree remote explorers
// mount as their -store, and health/metrics probes. docs/SERVICE.md is
// the contract; server_test.go pins the queue and drain semantics.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; exposed only with -pprof
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xsim"
)

// jobRequest is one evaluation submission: a description (builtin
// machine name or raw ISDL source, exactly one) plus the kernel to
// compile, assemble, simulate and synthesize it against.
type jobRequest struct {
	Machine  string `json:"machine,omitempty"` // builtin: toy, spam, spam2, risc32
	ISDL     string `json:"isdl,omitempty"`    // raw description source
	Kernel   string `json:"kernel"`
	Workload string `json:"workload,omitempty"` // label in reports; default "kernel"
}

// jobStatus is a job's lifecycle state. "retry" is terminal but
// retryable: the job was rejected before running (queue drained at
// shutdown) and an identical resubmission is safe and cheap — whatever
// partial work happened is in the shared store.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
	statusRetry   jobStatus = "retry"
)

// job is one queued or completed evaluation.
type job struct {
	id    string
	req   jobRequest
	src   string           // resolved ISDL source
	trace obs.TraceContext // client's trace context, if the submit carried one
	wait  *obs.Span        // queue-wait span, started at submit, ended when run begins

	mu        sync.Mutex
	status    jobStatus
	errMsg    string
	eval      *core.Evaluation
	cached    bool
	roots     []uint64 // span IDs whose subtrees belong to this job
	submitted time.Time
}

func (j *job) set(st jobStatus, errMsg string) {
	j.mu.Lock()
	j.status, j.errMsg = st, errMsg
	j.mu.Unlock()
}

// statusJSON is the wire form of a job's state (status and result
// endpoints, and submit rejections, which carry no id).
type statusJSON struct {
	ID        string           `json:"id,omitempty"`
	Status    jobStatus        `json:"status"`
	Error     string           `json:"error,omitempty"`
	Cached    bool             `json:"cached,omitempty"`
	Retryable bool             `json:"retryable,omitempty"`
	Eval      *core.Evaluation `json:"evaluation,omitempty"`
	// TraceID is the daemon registry's trace identity and Spans the
	// job's daemon-side span subtrees (queue wait, the job, its pipeline
	// stages) in wire form — returned with the result so the client can
	// merge them under its own submit span (obs.ImportSpans).
	TraceID string         `json:"trace_id,omitempty"`
	Spans   []obs.WireSpan `json:"spans,omitempty"`
}

func (j *job) statusJSON(withEval bool) statusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := statusJSON{ID: j.id, Status: j.status, Error: j.errMsg,
		Cached: j.cached, Retryable: j.status == statusRetry}
	if withEval {
		out.Eval = j.eval
	}
	return out
}

// Trace lanes: jobs and their pipeline stages run on lane 0, queue-wait
// spans on lane 1, server-side blob transfers on blob.HandlerObs's own
// lane. Exported lane names make the merged trace self-describing.
const (
	laneJobs  = 0
	laneQueue = 1
)

// serverConfig sizes a server's fleet-telemetry knobs alongside the
// queue; zero values mean "sensible default" (and "off" for pprof).
type serverConfig struct {
	workers    int
	queueCap   int
	simBackend string        // "" = evaluator default
	sampleEvry time.Duration // dashboard sampling interval; <= 0 = 1s
	sampleWin  int           // samples kept for the dashboard; <= 0 = 360
	flightCap  int           // flight-recorder span ring; <= 0 = 256
	pprof      bool          // mount net/http/pprof under /debug/pprof/
}

// server owns the queue, the workers, the shared store and the pipeline.
type server struct {
	reg     *obs.Registry
	store   blob.Store
	cache   *core.StageCache
	pipe    *core.Pipeline
	sampler *obs.Sampler
	flight  *obs.FlightRecorder

	// evalFn runs one job's evaluation under the given parent span;
	// tests stub it. The bool is the served-from-cache verdict.
	evalFn func(*job, *obs.Span) (*core.Evaluation, bool, error)

	workers int
	queue   chan *job
	qmu     sync.RWMutex // guards draining + queue close against submits
	drainng bool
	closed  bool
	wg      sync.WaitGroup

	jobs   sync.Map // id -> *job
	nextID atomic.Uint64
	mux    *http.ServeMux
}

// newServer wires a server over a store per cfg.
func newServer(st blob.Store, reg *obs.Registry, cfg serverConfig) (*server, error) {
	if cfg.workers <= 0 || cfg.queueCap <= 0 {
		return nil, fmt.Errorf("served: workers (%d) and queue capacity (%d) must be positive", cfg.workers, cfg.queueCap)
	}
	ev := core.NewEvaluator()
	if cfg.simBackend != "" {
		sb, err := xsim.ParseBackend(cfg.simBackend)
		if err != nil {
			return nil, err
		}
		ev.SimBackend = sb
	}
	cache := core.NewStageCache()
	cache.Bind(reg)
	cache.SetStore(st)
	flight := obs.NewFlightRecorder(cfg.flightCap)
	reg.AttachFlight(flight)
	reg.SetLaneName(laneJobs, "jobs")
	reg.SetLaneName(laneQueue, "queue")
	s := &server{
		reg:     reg,
		store:   st,
		cache:   cache,
		pipe:    &core.Pipeline{Evaluator: ev, Cache: cache, Obs: reg},
		sampler: obs.NewSampler(reg, cfg.sampleEvry, cfg.sampleWin),
		flight:  flight,
		workers: cfg.workers,
		queue:   make(chan *job, cfg.queueCap),
		mux:     http.NewServeMux(),
	}
	s.evalFn = s.evaluate
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.Handle("/v1/blobs/", blob.HandlerObs(st, reg))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /dash", obs.DashHandler(s.sampler))
	s.mux.Handle("GET /dash/data", obs.DashHandler(s.sampler))
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	if cfg.pprof {
		// The net/http/pprof import registers on DefaultServeMux;
		// exposing it is opt-in.
		s.mux.Handle("/debug/pprof/", http.DefaultServeMux)
	}
	return s, nil
}

// start launches the evaluation workers and the dashboard sampler.
func (s *server) start() {
	s.sampler.Start()
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *server) handler() http.Handler { return s.mux }

// beginDrain stops accepting work: new submits get a retryable 503 while
// status/result/blob reads keep serving. Call closeAndWait afterwards.
func (s *server) beginDrain() {
	s.qmu.Lock()
	s.drainng = true
	s.qmu.Unlock()
}

// closeAndWait closes the queue and waits for the workers: in-flight
// evaluations drain to completion, still-queued jobs are marked retry.
// The dashboard sampler stops with them.
func (s *server) closeAndWait() {
	s.qmu.Lock()
	if !s.closed {
		s.drainng = true // closing implies draining; guard the submit path
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	s.wg.Wait()
	s.sampler.Stop()
}

func (s *server) isDraining() bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	return s.drainng
}

func (s *server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.reg.Gauge("served.queue.depth").Set(int64(len(s.queue)))
		if s.isDraining() {
			// Queued but never started: reject retryably rather than
			// stretch the shutdown by a whole evaluation.
			j.wait.SetArg("outcome", "drained")
			j.wait.End()
			j.set(statusRetry, "server draining; resubmit")
			s.reg.Counter("served.jobs.retried").Inc()
			continue
		}
		s.run(j)
	}
}

// run executes one job under a span, with the wait and run times in
// histograms and the outcome in counters. The queue-wait span ends here
// (its duration IS the queue time); the job span parents the pipeline's
// stage spans, and both subtrees are remembered on the job so the result
// endpoint can ship them back to a tracing client.
func (s *server) run(j *job) {
	j.wait.End()
	sp := s.reg.StartSpanLane("job", laneJobs)
	sp.SetArg("id", j.id)
	if j.trace.Valid() {
		sp.SetArg("client", j.trace.String())
	}
	j.mu.Lock()
	j.roots = []uint64{j.wait.ID(), sp.ID()}
	j.mu.Unlock()
	s.reg.Histogram("served.job.wait.ns").Observe(time.Since(j.submitted))
	s.reg.Gauge("served.jobs.running").Add(1)
	j.set(statusRunning, "")
	start := time.Now()
	eval, cached, err := s.evalFn(j, sp)
	s.reg.Histogram("served.job.run.ns").Observe(time.Since(start))
	s.reg.Gauge("served.jobs.running").Add(-1)
	if err != nil {
		j.set(statusFailed, err.Error())
		s.reg.Counter("served.jobs.failed").Inc()
		sp.SetArg("err", err.Error())
	} else {
		// The live hardware model is not wire-representable (it holds the
		// cyclic ISDL AST) and is dropped from results, exactly as the
		// persisted combine artifact drops it (internal/core/persist.go).
		wire := *eval
		wire.Hardware = nil
		j.mu.Lock()
		j.status, j.eval, j.cached = statusDone, &wire, cached
		j.mu.Unlock()
		s.reg.Counter("served.jobs.done").Inc()
		if cached {
			sp.SetArg("cache", "hit")
		}
	}
	sp.End()
}

// evaluate runs the staged pipeline for one job. The cached verdict
// compares per-stage miss counts around the evaluation: zero new misses
// outside Parse means every artifact was served from cache or store.
// (Exact with one worker; best-effort under concurrent jobs, whose
// misses can bleed into each other's windows.)
func (s *server) evaluate(j *job, sp *obs.Span) (*core.Evaluation, bool, error) {
	workload := j.req.Workload
	if workload == "" {
		workload = "kernel"
	}
	before := s.cache.PerStage()
	eval, err := s.pipe.EvaluateKernelTraced(j.src, j.req.Kernel, workload, sp)
	after := s.cache.PerStage()
	cached := true
	for st := core.Stage(0); st < core.NumStages; st++ {
		if st != core.StageParse && after[st].Misses != before[st].Misses {
			cached = false
		}
	}
	return eval, cached, err
}

// maxRequestBytes bounds one submission body (descriptions and kernels
// are text; a megabyte is generous).
const maxRequestBytes = 1 << 20

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, statusJSON{Status: statusFailed, Error: err.Error()})
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, statusJSON{Status: statusFailed, Error: "bad request: " + err.Error()})
		return
	}
	src, err := resolveSource(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, statusJSON{Status: statusFailed, Error: err.Error()})
		return
	}
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextID.Add(1)),
		req:       req,
		src:       src,
		status:    statusQueued,
		submitted: time.Now(),
	}
	j.trace, _ = obs.ExtractTrace(r.Header)
	// The queue-wait span starts now and ends when a worker picks the
	// job up (or the drain rejects it). Rejected submits below never End
	// it, so it is never recorded.
	j.wait = s.reg.StartSpanLane("queue-wait", laneQueue)
	j.wait.SetArg("id", j.id)
	if j.trace.Valid() {
		j.wait.SetArg("client", j.trace.String())
	}
	s.jobs.Store(j.id, j)

	s.qmu.RLock()
	if s.drainng {
		s.qmu.RUnlock()
		s.jobs.Delete(j.id)
		s.reg.Counter("served.jobs.rejected").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, statusJSON{Status: statusRetry, Retryable: true, Error: "server draining; resubmit"})
		return
	}
	select {
	case s.queue <- j:
		s.qmu.RUnlock()
		s.reg.Counter("served.jobs.submitted").Inc()
		s.reg.Gauge("served.queue.depth").Set(int64(len(s.queue)))
		writeJSON(w, http.StatusAccepted, statusJSON{ID: j.id, Status: statusQueued})
	default:
		s.qmu.RUnlock()
		s.jobs.Delete(j.id)
		s.reg.Counter("served.jobs.rejected").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, statusJSON{Status: statusRetry, Retryable: true, Error: "job queue full; resubmit"})
	}
}

// resolveSource turns a request into ISDL text: exactly one of machine
// (builtin name) or isdl (raw source), plus a non-empty kernel.
func resolveSource(req jobRequest) (string, error) {
	if req.Kernel == "" {
		return "", errors.New("kernel is required")
	}
	switch {
	case req.Machine != "" && req.ISDL != "":
		return "", errors.New("give machine or isdl, not both")
	case req.Machine != "":
		src, ok := repro.Machines()[req.Machine]
		if !ok {
			return "", fmt.Errorf("unknown machine %q", req.Machine)
		}
		return src, nil
	case req.ISDL != "":
		return req.ISDL, nil
	}
	return "", errors.New("machine or isdl is required")
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*job, bool) {
	v, ok := s.jobs.Load(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, statusJSON{Status: statusFailed, Error: "unknown job " + r.PathValue("id")})
		return nil, false
	}
	return v.(*job), true
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.statusJSON(false))
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	out := j.statusJSON(true)
	switch out.Status {
	case statusDone:
		j.mu.Lock()
		roots := append([]uint64(nil), j.roots...)
		j.mu.Unlock()
		if spans := s.reg.ExportSubtrees(roots...); len(spans) > 0 {
			out.TraceID = fmt.Sprintf("%016x", s.reg.TraceID())
			out.Spans = spans
		}
		writeJSON(w, http.StatusOK, out)
	case statusRetry:
		out.Eval = nil
		writeJSON(w, http.StatusServiceUnavailable, out)
	default:
		// Not finished (or failed): the status document says which; 409
		// tells pollers to keep waiting or give up, not to parse an
		// evaluation.
		out.Eval = nil
		writeJSON(w, http.StatusConflict, out)
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (json, prom or text)", format), http.StatusBadRequest)
	}
}

// handleFlight dumps the flight recorder: the last N completed spans,
// oldest first, as JSON wire spans with wall-clock timestamps.
func (s *server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.flight.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
