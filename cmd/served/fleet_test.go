package main

// Fleet-telemetry tests: the cross-process trace round trip (client
// submit span -> daemon queue-wait + job + pipeline stages -> merged
// client trace), the Prometheus exposition endpoint, the dashboard, and
// the flight recorder.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// TestEndToEndMergedTrace submits a real evaluation through the jobs
// client with tracing on and asserts the daemon's queue-wait and
// per-stage spans come back as descendants of the client's submit span.
// The test server starts with a fresh store, so the pipeline stages
// genuinely execute (a warm combine cache would short-circuit them and
// the job would produce no stage spans).
func TestEndToEndMergedTrace(t *testing.T) {
	s, ts := newTestServer(t, 1, 8)
	s.start()
	defer s.closeAndWait()

	clientReg := obs.NewRegistry()
	client := service.NewClient(ts.URL)
	root := clientReg.StartSpan("explore.remote")
	st, err := client.EvaluateTraced(context.Background(),
		service.JobRequest{Machine: "toy", Kernel: testKernel}, clientReg, root, 5*time.Millisecond)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "done" || st.Eval == nil {
		t.Fatalf("remote evaluation = %+v, want done with an evaluation", st)
	}
	if st.TraceID == "" || len(st.Spans) == 0 {
		t.Fatalf("result carried trace_id=%q and %d spans; want both", st.TraceID, len(st.Spans))
	}

	spans := clientReg.Spans()
	byName := map[string]obs.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	submit, ok := byName["submit"]
	if !ok {
		t.Fatal("no submit span in the client trace")
	}
	if submit.Parent != byName["explore.remote"].ID {
		t.Errorf("submit parent = %d, want explore.remote %d", submit.Parent, byName["explore.remote"].ID)
	}
	wait, ok := byName["queue-wait"]
	if !ok {
		t.Fatal("daemon queue-wait span missing from the merged client trace")
	}
	if wait.Parent != submit.ID {
		t.Errorf("queue-wait parent = %d, want submit %d", wait.Parent, submit.ID)
	}
	jobSpan, ok := byName["job"]
	if !ok {
		t.Fatal("daemon job span missing from the merged client trace")
	}
	if jobSpan.Parent != submit.ID {
		t.Errorf("job parent = %d, want submit %d", jobSpan.Parent, submit.ID)
	}
	stages := 0
	for _, name := range []string{"parse", "compile", "assemble", "simulate", "synthesize", "combine"} {
		if sp, ok := byName[name]; ok {
			stages++
			if sp.Parent != jobSpan.ID {
				t.Errorf("stage %s parent = %d, want job %d", name, sp.Parent, jobSpan.ID)
			}
			if sp.Lane < service.RemoteLaneBase {
				t.Errorf("stage %s lane = %d, want >= %d (imported lanes shifted)", name, sp.Lane, service.RemoteLaneBase)
			}
		}
	}
	if stages == 0 {
		t.Error("no pipeline stage spans merged into the client trace")
	}
	if wait.Args["daemon"] == "" || wait.Args["remote_trace"] == "" {
		t.Errorf("imported span args = %v, want daemon and remote_trace tags", wait.Args)
	}
	// The daemon kept its own spans under its own trace identity.
	if s.reg.TraceID() == clientReg.TraceID() {
		t.Error("daemon and client share a trace ID; propagation should not overwrite identities")
	}
}

// TestSubmitWithoutTraceStillWorks pins that untraced submits (no
// X-Repro-Trace header) flow exactly as before and still return spans
// in the result (the client just won't merge them anywhere).
func TestSubmitWithoutTraceStillWorks(t *testing.T) {
	s, ts := newTestServer(t, 1, 8)
	s.start()
	defer s.closeAndWait()

	code, st := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.Status != statusDone {
		t.Fatalf("job = %+v, want done", final)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" || len(out.Spans) == 0 {
		t.Errorf("untraced job result has trace_id=%q, %d spans; want daemon spans regardless", out.TraceID, len(out.Spans))
	}
}

func TestMetricsPromEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 1, 4)
	s.start()
	defer s.closeAndWait()
	code, _ := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	if err := obs.CheckExposition(data); err != nil {
		t.Errorf("/metrics?format=prom is not valid exposition: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), "# TYPE served_jobs_submitted_total counter") {
		t.Errorf("exposition missing the submit counter:\n%s", data)
	}

	// Unknown format is a 400, JSON stays the default.
	resp2, err := http.Get(ts.URL + "/metrics?format=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("format=nope = %d, want 400", resp2.StatusCode)
	}
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp3.Body).Decode(&doc); err != nil {
		t.Errorf("default /metrics is not JSON: %v", err)
	}
}

func TestDashAndFlightEndpoints(t *testing.T) {
	s, ts := newTestServer(t, 1, 4)
	s.start()
	defer s.closeAndWait()
	code, st := postJob(t, ts.URL, jobRequest{Machine: "toy", Kernel: testKernel})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts.URL, st.ID)
	s.sampler.SampleNow()

	resp, err := http.Get(ts.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "<!doctype html>") {
		t.Errorf("GET /dash: %d, %.60q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/dash/data")
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.DashDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET /dash/data: %v", err)
	}
	if len(doc.Series) == 0 {
		t.Error("dash data has no series after a completed job")
	}

	resp, err = http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var flight struct {
		Capacity int            `json:"capacity"`
		Total    uint64         `json:"total"`
		Spans    []obs.WireSpan `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&flight)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET /debug/flight: %v", err)
	}
	if flight.Total == 0 || len(flight.Spans) == 0 {
		t.Errorf("flight recorder empty after a completed job: %+v", flight)
	}
}
