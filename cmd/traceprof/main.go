// Command traceprof is the trace "processing program" of paper §3.1: it
// consumes an execution address trace produced by xsim (the `trace`
// command, or `xsim -s prog.s` with a trace file) and prints an execution
// profile — symbol attribution and the hottest instructions — against the
// program that produced it.
//
// Usage:
//
//	xsim -m toy -s prog.s -batch <(echo -e "trace t.log\nrun")
//	asm -m toy prog.s -o prog.xbin
//	traceprof -m toy -p prog.xbin t.log
//	traceprof -m toy -p prog.xbin -annotate t.log
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/traceprof"
)

func main() {
	machine := flag.String("m", "", "machine: .isdl file or builtin (toy, spam, spam2)")
	progFile := flag.String("p", "", "program (.xbin) the trace was recorded from")
	annotate := flag.Bool("annotate", false, "print an annotated per-address listing")
	top := flag.Int("top", 10, "number of hottest addresses to report")
	flag.Parse()
	if *machine == "" || *progFile == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceprof -m <machine> -p <prog.xbin> [-annotate] [-top n] <trace>")
		os.Exit(2)
	}
	d, err := loadDescription(*machine)
	if err != nil {
		fatal(err)
	}
	blob, err := os.ReadFile(*progFile)
	if err != nil {
		fatal(err)
	}
	p, err := repro.UnmarshalProgram(d, blob)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	prof, err := traceprof.Read(f)
	if err != nil {
		fatal(err)
	}
	if *annotate {
		if err := prof.Annotate(os.Stdout, d, p); err != nil {
			fatal(err)
		}
		return
	}
	if err := prof.Report(os.Stdout, d, p, *top); err != nil {
		fatal(err)
	}
}

func loadDescription(arg string) (*repro.Description, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return repro.ParseISDL(src)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	return repro.ParseISDL(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceprof:", err)
	os.Exit(1)
}
