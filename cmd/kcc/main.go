// Command kcc is the retargetable compiler of the exploration loop (the
// AVIV role in paper Figure 1): it compiles the kernel language to assembly
// for any classifiable ISDL machine.
//
// Usage:
//
//	kcc -m spam2 kernel.k              print assembly
//	kcc -m spam2 -o out.s kernel.k     write assembly
//	kcc -m spam2 -run kernel.k         compile, assemble, simulate, stats
package main

import (
	"flag"
	"fmt"
	"os"
	"repro/internal/atomicfile"

	"repro"
	"repro/internal/compiler"
)

func main() {
	machine := flag.String("m", "", "machine: .isdl file or builtin (toy, spam, spam2)")
	out := flag.String("o", "", "output assembly file")
	run := flag.Bool("run", false, "also assemble, simulate to halt, and print statistics")
	noPack := flag.Bool("nopack", false, "emit one operation per instruction (disable VLIW packing)")
	flag.Parse()
	if *machine == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kcc -m <machine> [-o out.s] [-run] <kernel.k>")
		os.Exit(2)
	}
	d, err := loadDescription(*machine)
	if err != nil {
		fatal(err)
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	asmText, err := compiler.CompileWithOptions(d, string(blob), compiler.Options{NoPacking: *noPack})
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := atomicfile.WriteFile(*out, []byte(asmText), 0o644); err != nil {
			fatal(err)
		}
	} else if !*run {
		fmt.Print(asmText)
	}
	if *run {
		p, err := repro.Assemble(d, asmText)
		if err != nil {
			fatal(err)
		}
		sim := repro.NewSimulator(d)
		if err := sim.Load(p); err != nil {
			fatal(err)
		}
		if err := sim.Run(100_000_000); err != nil {
			fatal(err)
		}
		fmt.Print(sim.Stats().Summary(d))
	}
}

func loadDescription(arg string) (*repro.Description, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return repro.ParseISDL(src)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	return repro.ParseISDL(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcc:", err)
	os.Exit(1)
}
