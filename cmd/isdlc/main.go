// Command isdlc validates an ISDL machine description and reports its
// structure: storage, fields, operation signatures (Figure 3) and
// constraints. With -format it pretty-prints the canonical source.
//
// Usage:
//
//	isdlc [-format] <machine>
//
// where <machine> is an .isdl file or a builtin name (toy, spam, spam2).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/isdl"
)

// loadMachine resolves a builtin name or reads a file.
func loadMachine(arg string) (*isdl.Description, string, error) {
	if src, ok := repro.Machines()[arg]; ok {
		d, err := repro.ParseISDL(src)
		return d, src, err
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, "", err
	}
	d, err := repro.ParseISDL(string(blob))
	return d, string(blob), err
}

func main() {
	format := flag.Bool("format", false, "print the canonical ISDL source")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isdlc [-format] <machine.isdl | toy | spam | spam2>")
		os.Exit(2)
	}
	d, _, err := loadMachine(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "isdlc:", err)
		os.Exit(1)
	}
	if *format {
		fmt.Print(repro.FormatISDL(d))
		return
	}

	fmt.Printf("machine %s: %d-bit instruction word, %d fields\n", d.Name, d.WordWidth, len(d.Fields))
	fmt.Println("\nstorage:")
	for _, st := range d.Storage {
		if st.Kind.Addressed() {
			fmt.Printf("  %-18s %-18s %d x %d bits\n", st.Name, st.Kind, st.Depth, st.Width)
		} else {
			fmt.Printf("  %-18s %-18s %d bits\n", st.Name, st.Kind, st.Width)
		}
	}
	for _, a := range d.Aliases {
		fmt.Printf("  %-18s alias of %s\n", a.Name, a.Target)
	}
	fmt.Println("\ninstruction set:")
	for _, f := range d.Fields {
		fmt.Printf("  field %s (%d operations)\n", f.Name, len(f.Ops))
		for _, op := range f.Ops {
			fmt.Printf("    %-8s %s  cycle=%d stall=%d size=%d latency=%d usage=%d\n",
				op.Name, op.Sig.String(),
				op.Costs.Cycle, op.Costs.Stall, op.Costs.Size, op.Timing.Latency, op.Timing.Usage)
		}
	}
	if len(d.Constraints) > 0 {
		fmt.Println("\nconstraints:")
		for _, c := range d.Constraints {
			fmt.Printf("  %s\n", c.Text)
		}
	}
}
