// Command hgen runs the hardware synthesis system of paper §4: it compiles
// an ISDL description into a synthesizable Verilog model and reports cycle
// length, die size and the area breakdown against the LSI10K-flavoured
// technology library (the Table 2 statistics).
//
// Usage:
//
//	hgen -m spam                       report synthesis statistics
//	hgen -m spam2 -o proc.v            also write the Verilog model
//	hgen -m spam -sharing off          ablation: disable resource sharing
//	hgen -m spam -decode comparator    ablation: naive decode logic
package main

import (
	"flag"
	"fmt"
	"os"
	"repro/internal/atomicfile"

	"repro"
	"repro/internal/hgen"
	"repro/internal/tech"
)

func main() {
	machine := flag.String("m", "", "machine: .isdl file or builtin (toy, spam, spam2)")
	out := flag.String("o", "", "write the generated Verilog to this file")
	sharing := flag.String("sharing", "full", "resource sharing: off | rules | full")
	decodeStyle := flag.String("decode", "twolevel", "decode logic: twolevel | comparator")
	retime := flag.Float64("retime", 0, "retime pipelines toward this cycle length in ns (§6.2 pipeline optimization)")
	flag.Parse()
	if *machine == "" {
		fmt.Fprintln(os.Stderr, "usage: hgen -m <machine> [-o out.v] [-sharing off|rules|full] [-decode twolevel|comparator]")
		os.Exit(2)
	}
	d, err := loadDescription(*machine)
	if err != nil {
		fatal(err)
	}

	if *retime > 0 {
		res, err := hgen.RetimeForCycle(d, tech.LSI10K(), *retime)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Report())
		d = res.Desc
		fmt.Println()
	}

	opts := hgen.DefaultOptions()
	switch *sharing {
	case "off":
		opts.Sharing = hgen.ShareOff
	case "rules":
		opts.Sharing = hgen.ShareRules
	case "full":
		opts.Sharing = hgen.ShareRulesAndConstraints
	default:
		fatal(fmt.Errorf("unknown sharing mode %q", *sharing))
	}
	switch *decodeStyle {
	case "twolevel":
		opts.Decode = hgen.DecodeTwoLevel
	case "comparator":
		opts.Decode = hgen.DecodeComparator
	default:
		fatal(fmt.Errorf("unknown decode style %q", *decodeStyle))
	}
	opts.EmitVerilog = true

	r, err := repro.Synthesize(d, nil, opts)
	if err != nil {
		// Machines with Stack storage or multi-word instructions still get
		// the cost model.
		opts.EmitVerilog = false
		r, err = repro.Synthesize(d, nil, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "hgen: note: Verilog model skipped (unsupported construct); cost model only")
	}
	fmt.Print(r.Report())
	if *out != "" {
		if r.VerilogText == "" {
			fatal(fmt.Errorf("no Verilog was generated"))
		}
		if err := atomicfile.WriteFile(*out, []byte(r.VerilogText), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d lines)\n", *out, r.VerilogLines)
	}
}

func loadDescription(arg string) (*repro.Description, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return repro.ParseISDL(src)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	return repro.ParseISDL(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgen:", err)
	os.Exit(1)
}
