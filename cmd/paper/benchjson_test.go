package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.00GHz
BenchmarkExplore_SPAM/seq-8         	       2	 512345678 ns/op
BenchmarkExplore_SPAM/par-cache-8   	       5	 101234567 ns/op
BenchmarkGensim_Interp-8            	     120	   9876543 ns/op	        12.34 MIPS	       321.0 instrs/op
PASS
ok  	repro	3.456s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	if got := results[0].Name; got != "BenchmarkExplore_SPAM/seq" {
		t.Errorf("name = %q, want procs suffix stripped", got)
	}
	if results[0].Iters != 2 || results[0].NsPerOp != 512345678 {
		t.Errorf("result[0] = %+v, want iters 2 and ns/op 512345678", results[0])
	}
	if results[0].Metrics != nil {
		t.Errorf("result[0] has metrics %v, want none", results[0].Metrics)
	}
	g := results[2]
	if g.Name != "BenchmarkGensim_Interp" || g.Iters != 120 {
		t.Errorf("result[2] = %+v", g)
	}
	if g.Metrics["MIPS"] != 12.34 || g.Metrics["instrs/op"] != 321.0 {
		t.Errorf("result[2] metrics = %v, want MIPS and instrs/op", g.Metrics)
	}
}

func TestParseBenchOutputBadLine(t *testing.T) {
	_, err := parseBenchOutput(strings.NewReader("BenchmarkX-8  3  12 ns/op  extra\n"))
	if err == nil {
		t.Fatal("odd value/unit fields parsed without error")
	}
}

func TestWriteBenchJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchJSON(out, strings.NewReader(sampleBenchOutput)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.GoVersion == "" || doc.GOOS == "" || doc.GOARCH == "" {
		t.Errorf("doc is missing environment fields: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Errorf("doc has %d results, want 3", len(doc.Results))
	}
}

func TestWriteBenchJSONEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchJSON(out, strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("no Benchmark lines accepted without error")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("output file created despite error (stat err: %v)", err)
	}
}
