package main

// -bench-json turns `go test -bench` output into a machine-readable
// benchmark document, so CI and the PR history can archive benchmark
// runs (BENCH_<pr>.json) without re-parsing Go's text format:
//
//	go test -bench Explore -run '^$' . | paper -bench-json BENCH.json
//
// Every Benchmark line becomes one result: the name (with Go's
// -GOMAXPROCS suffix stripped), the iteration count, ns/op, and any
// extra ReportMetric pairs (MIPS, instrs/op, ...) keyed by unit.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/atomicfile"
)

// BenchResult is one parsed Benchmark line.
type BenchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchDoc is the -bench-json output document.
type benchDoc struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Results   []BenchResult `json:"results"`
}

// benchLine matches `BenchmarkName[-procs] <iters> <value> <unit> ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procsSuffix is Go's trailing -GOMAXPROCS on benchmark names.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts every benchmark result from `go test
// -bench` text output. Non-benchmark lines (PASS, ok, pkg headers,
// goos/goarch) are skipped; a Benchmark line whose measurements do not
// parse is an error rather than a silent drop.
func parseBenchOutput(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		res := BenchResult{Name: procsSuffix.ReplaceAllString(m[1], "")}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bench-json: %q: bad iteration count: %v", m[1], err)
		}
		res.Iters = iters
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("bench-json: %q: measurements are not value/unit pairs: %q", m[1], m[3])
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench-json: %q: bad value %q: %v", m[1], fields[i], err)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench-json: read: %w", err)
	}
	return out, nil
}

// writeBenchJSON parses bench output from r and writes the document to
// name atomically.
func writeBenchJSON(name string, r io.Reader) error {
	results, err := parseBenchOutput(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("bench-json: no Benchmark lines in input")
	}
	doc := benchDoc{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   results,
	}
	return atomicfile.WriteTo(name, 0o644, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&doc)
	})
}
