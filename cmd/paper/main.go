// Command paper regenerates every table of the paper's evaluation (§6) and
// the ablations DESIGN.md defines, in one run:
//
//	paper                    everything (Table 1 uses a 2 s budget per model)
//	paper -table 1           just the simulation-speed comparison
//	paper -table 2           just the synthesis statistics
//	paper -ablation all      just the ablations
//	paper -budget 500ms      quicker (noisier) Table 1
//	paper -cosim-workers 8   Verilog co-simulation fan-out (0 = NumCPU)
//	paper -bench-json f.json parse `go test -bench` output on stdin into
//	                         a benchmark JSON document (skips everything
//	                         else)
//
// Table 1's Verilog measurement runs whole workloads concurrently on the
// internal/cosim worker pool; the report includes the aggregate throughput
// and the measured parallel-vs-serial speedup alongside the per-instance
// speed the Speedup column is computed from.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1 | 2 | all | none")
	ablation := flag.String("ablation", "all", "which ablation: sharing | decode | stalls | all | none")
	budget := flag.Duration("budget", 2*time.Second, "measurement budget per simulator for Table 1")
	cosimWorkers := flag.Int("cosim-workers", 0, "parallel Verilog co-simulation workers for Table 1 (0 = NumCPU)")
	benchJSON := flag.String("bench-json", "", "parse `go test -bench` output on stdin and write it as JSON here")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, os.Stdin); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	if *table == "1" || *table == "all" {
		t1, err := experiments.RunTable1Opts(experiments.Table1Options{Budget: *budget, Workers: *cosimWorkers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(t1.Render())
	}
	if *table == "2" || *table == "all" {
		rows, err := experiments.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if *ablation == "sharing" || *ablation == "all" {
		rows, err := experiments.RunAblationSharing()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderSharing(rows))
	}
	if *ablation == "decode" || *ablation == "all" {
		rows, err := experiments.RunAblationDecode()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderDecode(rows))
	}
	if *ablation == "stalls" || *ablation == "all" {
		rows, err := experiments.RunAblationStalls()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderStalls(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
