// Command paper regenerates every table of the paper's evaluation (§6) and
// the ablations DESIGN.md defines, in one run:
//
//	paper                    everything (Table 1 uses a 2 s budget per model)
//	paper -table 1           just the simulation-speed comparison
//	paper -table 2           just the synthesis statistics
//	paper -ablation all      just the ablations
//	paper -budget 500ms      quicker (noisier) Table 1
//	paper -cosim-workers 8   Verilog co-simulation fan-out (0 = NumCPU)
//	paper -bench-json f.json parse `go test -bench` output on stdin into
//	                         a benchmark JSON document (skips everything
//	                         else)
//
// The suite registry (ROADMAP item 4) adds the workload-gauntlet modes,
// which skip the tables above:
//
//	paper -suite                      run every registered workload on every
//	                                  zoo machine with reference checking
//	paper -suite -suite-filter dsp    only workloads tagged "dsp"
//	paper -suite -suite-json f.json   also write the report as JSON
//	paper -suite -suite-backend aot   select the xsim backend
//	paper -gauntlet -gauntlet-n 25 -seed 1
//	                                  differential fuzz gauntlet: random
//	                                  machine × registry kernel across
//	                                  interp/compiled/aot/cosim; byte-
//	                                  identical rerun for a fixed seed
//	paper -gauntlet -seed-replay S    replay one trial from a divergence
//	                                  report's printed seed
//	paper -gauntlet -gauntlet-json f.json  write the full report as JSON
//
// Table 1's Verilog measurement runs whole workloads concurrently on the
// internal/cosim worker pool; the report includes the aggregate throughput
// and the measured parallel-vs-serial speedup alongside the per-instance
// speed the Speedup column is computed from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/experiments"
	_ "repro/internal/gensim" // registers the aot backend
	"repro/internal/suite"
	"repro/internal/xsim"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1 | 2 | all | none")
	ablation := flag.String("ablation", "all", "which ablation: sharing | decode | stalls | all | none")
	budget := flag.Duration("budget", 2*time.Second, "measurement budget per simulator for Table 1")
	cosimWorkers := flag.Int("cosim-workers", 0, "parallel Verilog co-simulation workers for Table 1 (0 = NumCPU)")
	benchJSON := flag.String("bench-json", "", "parse `go test -bench` output on stdin and write it as JSON here")

	suiteRun := flag.Bool("suite", false, "run the benchmark suite (registry workloads × machine zoo) and skip the tables")
	suiteFilter := flag.String("suite-filter", "", "restrict the suite to workloads with this tag (or this exact name)")
	suiteJSON := flag.String("suite-json", "", "also write the suite report as JSON here")
	suiteBackend := flag.String("suite-backend", "", "xsim backend for the suite: interp | compiled | aot (default compiled)")

	gauntlet := flag.Bool("gauntlet", false, "run the differential fuzz gauntlet and skip the tables")
	gauntletN := flag.Int("gauntlet-n", 10, "gauntlet trial count")
	seed := flag.Int64("seed", 1, "gauntlet base seed (per-trial seeds derive from it)")
	seedReplay := flag.Int64("seed-replay", 0, "replay a single gauntlet trial from this per-trial seed (from a divergence report)")
	gauntletJSON := flag.String("gauntlet-json", "", "also write the gauntlet report as JSON here")
	gauntletNoCosim := flag.Bool("gauntlet-no-cosim", false, "skip the synthesized-Verilog gauntlet leg")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, os.Stdin); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	if *suiteRun {
		if err := runSuite(*suiteFilter, *suiteBackend, *suiteJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *gauntlet {
		if err := runGauntlet(*gauntletN, *seed, *seedReplay, *gauntletJSON, *gauntletNoCosim); err != nil {
			fatal(err)
		}
		return
	}

	if *table == "1" || *table == "all" {
		t1, err := experiments.RunTable1Opts(experiments.Table1Options{Budget: *budget, Workers: *cosimWorkers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(t1.Render())
	}
	if *table == "2" || *table == "all" {
		rows, err := experiments.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if *ablation == "sharing" || *ablation == "all" {
		rows, err := experiments.RunAblationSharing()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderSharing(rows))
	}
	if *ablation == "decode" || *ablation == "all" {
		rows, err := experiments.RunAblationDecode()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderDecode(rows))
	}
	if *ablation == "stalls" || *ablation == "all" {
		rows, err := experiments.RunAblationStalls()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderStalls(rows))
	}
}

// runSuite runs the registry workloads across the zoo and renders the
// report; the filter matches a tag first, then an exact workload name.
func runSuite(filter, backend, jsonPath string) error {
	f := suite.Filter{Tag: filter}
	if filter != "" && len(suite.All(f)) == 0 {
		f = suite.Filter{Name: filter}
	}
	rep, err := experiments.RunSuite(f, experiments.SuiteOptions{Backend: xsim.Backend(backend)})
	if err != nil {
		return err
	}
	fmt.Println(rep.Render())
	if jsonPath != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := atomicfile.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if rep.Verified == 0 {
		return fmt.Errorf("suite: no workload matched filter %q", filter)
	}
	return nil
}

// runGauntlet runs (or replays one trial of) the differential gauntlet.
func runGauntlet(n int, seed, seedReplay int64, jsonPath string, noCosim bool) error {
	o := suite.GauntletOptions{N: n, Seed: seed, NoCosim: noCosim}
	var rep *suite.GauntletReport
	if seedReplay != 0 {
		tr := suite.RunTrial(0, seedReplay, o)
		rep = &suite.GauntletReport{N: 1, Seed: seedReplay, Cosim: !noCosim,
			Trials: []suite.Trial{tr}, Divergences: len(tr.Divergences)}
		if tr.Err != "" {
			rep.Errors = 1
		}
	} else {
		rep = suite.RunGauntlet(o)
	}
	fmt.Println(rep.Render())
	if jsonPath != "" {
		b, err := gauntletJSONBytes(rep)
		if err != nil {
			return err
		}
		if err := atomicfile.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if !rep.Clean() {
		return fmt.Errorf("gauntlet: %d divergence(s), %d error(s)", rep.Divergences, rep.Errors)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}

// gauntletJSONBytes serializes a gauntlet report deterministically (stable
// field order, trailing newline) so same-seed reruns are byte-identical.
func gauntletJSONBytes(r *suite.GauntletReport) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
