// Command asm is the retargetable assembler and disassembler of the
// exploration loop (paper Figure 1).
//
// Usage:
//
//	asm -m <machine> prog.s            assemble to prog.xbin
//	asm -m <machine> -o out.xbin prog.s
//	asm -m <machine> -d prog.xbin      disassemble
//	asm -m <machine> -l prog.s         print an address/hex listing
package main

import (
	"flag"
	"fmt"
	"os"
	"repro/internal/atomicfile"
	"strings"

	"repro"
)

func main() {
	machine := flag.String("m", "", "machine: .isdl file or builtin (toy, spam, spam2)")
	out := flag.String("o", "", "output file (default: input with .xbin)")
	disasm := flag.Bool("d", false, "disassemble an .xbin file")
	listing := flag.Bool("l", false, "print a listing instead of writing output")
	flag.Parse()
	if *machine == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asm -m <machine> [-d] [-l] [-o out] <file>")
		os.Exit(2)
	}
	d, err := loadDescription(*machine)
	if err != nil {
		fatal(err)
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *disasm {
		p, err := repro.UnmarshalProgram(d, blob)
		if err != nil {
			fatal(err)
		}
		fmt.Print(repro.Disassemble(p))
		return
	}

	p, err := repro.Assemble(d, string(blob))
	if err != nil {
		fatal(err)
	}
	if *listing {
		fmt.Print(p.Listing())
		return
	}
	name := *out
	if name == "" {
		name = strings.TrimSuffix(flag.Arg(0), ".s") + ".xbin"
	}
	if err := atomicfile.WriteFile(name, repro.MarshalProgram(p), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d words, %d symbols\n", name, len(p.Words), len(p.Symbols))
}

func loadDescription(arg string) (*repro.Description, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return repro.ParseISDL(src)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	return repro.ParseISDL(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm:", err)
	os.Exit(1)
}
