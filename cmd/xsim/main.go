// Command xsim runs the generated instruction-level simulator (paper §3)
// with the command-line and batch interface of §3.1: breakpoints, state
// monitors, attached commands, execution traces and utilization statistics.
//
// Usage:
//
//	xsim -m <machine>                       interactive session
//	xsim -m <machine> -s prog.s -run        assemble, run to halt, stats
//	xsim -m <machine> prog.xbin -batch f    load image, run a batch script
//
// -backend selects the execution strategy (interp, compiled, aot; see
// docs/GENSIM.md). The aot backend generates and natively compiles a
// specialized simulator per description; it drives the -run batch path, and
// falls back to compiled for interactive and -batch sessions (which need
// the in-process cores) or when no Go toolchain is available.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/atomicfile"
	_ "repro/internal/gensim" // registers the aot backend
	"repro/internal/obs"
	"repro/internal/xsim"
)

func main() {
	machine := flag.String("m", "", "machine: .isdl file or builtin (toy, spam, spam2)")
	source := flag.String("s", "", "assembly source to assemble and load")
	batch := flag.String("batch", "", "batch command script to execute")
	run := flag.Bool("run", false, "run to halt and print statistics")
	backend := flag.String("backend", "", "simulator backend: interp, compiled (default) or aot")
	metricsOut := flag.String("metrics-out", "", "write simulator perf counters as metrics JSON here")
	flag.Parse()
	if *machine == "" {
		fmt.Fprintln(os.Stderr, "usage: xsim -m <machine> [-s prog.s | prog.xbin] [-batch script] [-run] [-backend interp|compiled|aot]")
		os.Exit(2)
	}
	b, err := xsim.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	d, err := loadDescription(*machine)
	if err != nil {
		fatal(err)
	}
	if b == xsim.BackendAOT && *run && *batch == "" {
		runEngine(d, b, *source, flag.Args(), *metricsOut)
		return
	}
	if b == xsim.BackendAOT {
		fmt.Fprintln(os.Stderr, "xsim: aot backend drives the -run batch path only; using compiled for this session")
		b = xsim.BackendCompiled
	}
	sim := xsim.New(d)
	if b == xsim.BackendInterp {
		sim.CompiledCore = false
	}
	sess := xsim.NewSession(sim, os.Stdout)
	sess.Open = os.ReadFile
	sess.Create = func(name string) (io.WriteCloser, error) { return os.Create(name) }

	if *source != "" {
		blob, err := os.ReadFile(*source)
		if err != nil {
			fatal(err)
		}
		p, err := repro.Assemble(d, string(blob))
		if err != nil {
			fatal(err)
		}
		if err := sess.LoadProgram(p); err != nil {
			fatal(err)
		}
	} else if flag.NArg() == 1 {
		if err := sess.Execute("load " + flag.Arg(0)); err != nil {
			fatal(err)
		}
	}

	switch {
	case *batch != "":
		f, err := os.Open(*batch)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sess.RunScript(f); err != nil {
			fatal(err)
		}
	case *run:
		if err := sess.Execute("run"); err != nil {
			fatal(err)
		}
		if err := sess.Execute("stats"); err != nil {
			fatal(err)
		}
		if err := sess.Execute("perf"); err != nil {
			fatal(err)
		}
	default:
		sess.REPL(os.Stdin)
	}

	if *metricsOut != "" {
		reg := obs.NewRegistry()
		sim.Perf().Publish(reg)
		writeMetrics(reg, *metricsOut)
	}
}

// writeMetrics writes the registry to name atomically (temp + rename, so
// a crash or exporter error never truncates an existing file), as JSON
// or — when name ends in .prom — Prometheus text exposition.
func writeMetrics(reg *obs.Registry, name string) {
	exporter := reg.WriteMetricsJSON
	if strings.HasSuffix(name, ".prom") {
		exporter = reg.WriteProm
	}
	if err := atomicfile.WriteTo(name, 0o644, exporter); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote metrics %s\n", name)
}

// runEngine is the backend-generic batch path: load a program into an
// engine of the requested backend, run to halt, print the same stats and
// perf summaries as the session's run/stats/perf commands.
func runEngine(d *repro.Description, b xsim.Backend, source string, args []string, metricsOut string) {
	var p *repro.Program
	var err error
	switch {
	case source != "":
		blob, rerr := os.ReadFile(source)
		if rerr != nil {
			fatal(rerr)
		}
		p, err = repro.Assemble(d, string(blob))
	case len(args) == 1:
		blob, rerr := os.ReadFile(args[0])
		if rerr != nil {
			fatal(rerr)
		}
		p, err = repro.UnmarshalProgram(d, blob)
	default:
		fatal(fmt.Errorf("-run with -backend %s needs -s prog.s or a prog.xbin argument", b))
	}
	if err != nil {
		fatal(err)
	}
	eng, info, err := xsim.NewEngine(d, b)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	if info.FallbackReason != "" {
		fmt.Fprintf(os.Stderr, "xsim: %s backend unavailable (%s); using %s\n",
			info.Requested, info.FallbackReason, info.Used)
	}
	if err := eng.Load(p); err != nil {
		fatal(err)
	}
	runErr := eng.Run(0)
	st := eng.Stats()
	fmt.Printf("backend %s: halted=%v at cycle %d\n", info.Used, eng.Halted(), eng.Cycle())
	if runErr != nil {
		fmt.Printf("fault: %v\n", runErr)
	}
	fmt.Print(st.Summary(d))
	fmt.Print(eng.Perf().Summary())
	if metricsOut != "" {
		reg := obs.NewRegistry()
		eng.Perf().Publish(reg)
		writeMetrics(reg, metricsOut)
	}
}

func loadDescription(arg string) (*repro.Description, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return repro.ParseISDL(src)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	return repro.ParseISDL(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsim:", err)
	os.Exit(1)
}
