// Command xsim runs the generated instruction-level simulator (paper §3)
// with the command-line and batch interface of §3.1: breakpoints, state
// monitors, attached commands, execution traces and utilization statistics.
//
// Usage:
//
//	xsim -m <machine>                       interactive session
//	xsim -m <machine> -s prog.s -run        assemble, run to halt, stats
//	xsim -m <machine> prog.xbin -batch f    load image, run a batch script
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/obs"
	"repro/internal/xsim"
)

func main() {
	machine := flag.String("m", "", "machine: .isdl file or builtin (toy, spam, spam2)")
	source := flag.String("s", "", "assembly source to assemble and load")
	batch := flag.String("batch", "", "batch command script to execute")
	run := flag.Bool("run", false, "run to halt and print statistics")
	metricsOut := flag.String("metrics-out", "", "write simulator perf counters as metrics JSON here")
	flag.Parse()
	if *machine == "" {
		fmt.Fprintln(os.Stderr, "usage: xsim -m <machine> [-s prog.s | prog.xbin] [-batch script] [-run]")
		os.Exit(2)
	}
	d, err := loadDescription(*machine)
	if err != nil {
		fatal(err)
	}
	sim := xsim.New(d)
	sess := xsim.NewSession(sim, os.Stdout)
	sess.Open = os.ReadFile
	sess.Create = func(name string) (io.WriteCloser, error) { return os.Create(name) }

	if *source != "" {
		blob, err := os.ReadFile(*source)
		if err != nil {
			fatal(err)
		}
		p, err := repro.Assemble(d, string(blob))
		if err != nil {
			fatal(err)
		}
		if err := sess.LoadProgram(p); err != nil {
			fatal(err)
		}
	} else if flag.NArg() == 1 {
		if err := sess.Execute("load " + flag.Arg(0)); err != nil {
			fatal(err)
		}
	}

	switch {
	case *batch != "":
		f, err := os.Open(*batch)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sess.RunScript(f); err != nil {
			fatal(err)
		}
	case *run:
		if err := sess.Execute("run"); err != nil {
			fatal(err)
		}
		if err := sess.Execute("stats"); err != nil {
			fatal(err)
		}
		if err := sess.Execute("perf"); err != nil {
			fatal(err)
		}
	default:
		sess.REPL(os.Stdin)
	}

	if *metricsOut != "" {
		reg := obs.NewRegistry()
		sim.Perf().Publish(reg)
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteMetricsJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s\n", *metricsOut)
	}
}

func loadDescription(arg string) (*repro.Description, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return repro.ParseISDL(src)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	return repro.ParseISDL(string(blob))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsim:", err)
	os.Exit(1)
}
