// Command explore runs architecture exploration (paper §1, Figure 1):
// starting from a base ISDL description, it mutates the instruction set,
// recompiles the kernel with the retargetable compiler, re-evaluates every
// candidate with the generated simulator and hardware model, and searches
// the run-time/area/power objective with a pluggable strategy.
//
// Usage:
//
//	explore -m spam2 -k kernel.k [-strategy hill|beam|pareto] [-beam 4]
//	        [-max-runtime us] [-max-area cells] [-max-power mw]
//	        [-frontier-out frontier.json|frontier.csv] [-frontier-cap n]
//	        [-restarts n] [-seed s] [-iters 8] [-workers n]
//	        [-sim-backend interp|compiled|aot]
//	        [-no-cache] [-cache-file c.json]
//	        [-store dir:PATH|http://HOST] [-o best.isdl]
//
// Strategies (-strategy, docs/EXPLORE.md):
//
//   - hill (default): accept the best improving neighbour each iteration,
//     stop at the first local optimum.
//   - beam: keep the -beam best candidates alive per iteration and
//     evaluate the union of their neighbours (deduplicated by canonical
//     ISDL), escaping optima hill climbing stops at.
//   - pareto: keep the whole non-dominated (run time, area, power)
//     frontier instead of a scalar top-K, under optional hard constraints
//     (-max-runtime/-max-area/-max-power; violating candidates are scored
//     but never enter the frontier). One run answers every objective
//     weighting; -frontier-out emits the trade-off curve as JSON or CSV
//     (by extension) for plotting, and -frontier-cap bounds the frontier
//     by deterministic crowding-distance truncation.
//
// -restarts n additionally re-runs the chosen strategy from n seeded
// random perturbations of the base (deterministic for a fixed -seed) and
// reports each restart's best plus the global winner.
//
// Neighbour candidates within an iteration are evaluated concurrently
// (-workers, default NumCPU) and every pipeline stage is memoized across
// iterations and restarts (see docs/PIPELINE.md); for every strategy the
// result is bit-identical to a sequential, uncached run. -cache-file
// persists the serializable stages (compile, simulate, synthesize) across
// invocations: the file is loaded if it exists (a missing file is a
// normal first run; a corrupt one is a hard error) and rewritten on
// success, so a repeated exploration starts with compilation and
// synthesis fully warm.
//
// -store attaches a shared artifact store (docs/PIPELINE.md,
// docs/SERVICE.md): dir:PATH is a directory any number of concurrent
// processes may share, http://HOST is a cmd/served daemon. Every
// serializable stage artifact — including whole evaluations and aot
// simulator binaries — is read from and written through to the store, so
// two explorers on different machines never evaluate the same
// architecture twice.
//
// The run is instrumented end to end (docs/OBSERVABILITY.md): -trace-out
// writes a Chrome trace_event file (open in chrome://tracing or
// ui.perfetto.dev), -metrics-out writes the metrics registry as JSON (or
// Prometheus text exposition when the filename ends in .prom), and a
// summary table of counters and per-stage latencies goes to stderr. All
// output files are written atomically (temp + rename), so a crash never
// leaves a truncated file behind.
//
// Fleet telemetry (docs/OBSERVABILITY.md "The fleet tier"):
//
//   - -remote http://HOST evaluates the kernel on a cmd/served daemon
//     instead of locally: one job is submitted (carrying this process's
//     trace context in X-Repro-Trace), and the daemon's queue-wait and
//     pipeline-stage spans come back merged into this run's trace, so
//     -trace-out shows the client → queue → stages → store timeline.
//   - -dash :PORT serves the live dashboard (GET /dash) plus /dash/data,
//     /metrics and /debug/flight while the exploration runs.
//   - -pprof :PORT serves net/http/pprof for continuous profiling.
//   - SIGQUIT dumps the flight recorder (last N completed spans) to
//     stderr without stopping the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; exposed only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/atomicfile"
	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/gensim"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/xsim"
)

func main() {
	machine := flag.String("m", "", "base machine: .isdl file or builtin (toy, spam, spam2)")
	kernelFile := flag.String("k", "", "kernel-language workload file")
	strategy := flag.String("strategy", "hill", "search strategy: hill (first local optimum), beam (top-K frontier) or pareto (non-dominated frontier)")
	beamWidth := flag.Int("beam", 4, "frontier width for -strategy beam")
	maxRuntime := flag.Float64("max-runtime", 0, "pareto hard constraint: maximum run time in us (0 = unconstrained)")
	maxArea := flag.Float64("max-area", 0, "pareto hard constraint: maximum die size in grid cells (0 = unconstrained)")
	maxPower := flag.Float64("max-power", 0, "pareto hard constraint: maximum power in mW (0 = unconstrained)")
	frontierOut := flag.String("frontier-out", "", "write the pareto frontier here as .json or .csv (by extension)")
	frontierCap := flag.Int("frontier-cap", 0, "cap the pareto frontier by crowding-distance truncation (0 = unbounded)")
	restarts := flag.Int("restarts", 0, "seeded random restarts around the chosen strategy (0 = none)")
	seed := flag.Int64("seed", 1, "perturbation seed for -restarts (fixed seed = byte-identical run)")
	iters := flag.Int("iters", 8, "maximum improvement iterations (per restart)")
	workers := flag.Int("workers", 0, "concurrent candidate evaluations per iteration (0 = NumCPU)")
	simBackend := flag.String("sim-backend", "", "simulator backend for evaluations: interp, compiled (default) or aot (docs/GENSIM.md)")
	noCache := flag.Bool("no-cache", false, "disable evaluation memoization across iterations")
	cacheFile := flag.String("cache-file", "", "persist the stage cache here across runs (loaded if present, saved on success)")
	storeSpec := flag.String("store", "", "shared artifact store: dir:PATH or http://HOST (cmd/served); see docs/SERVICE.md")
	out := flag.String("o", "", "write the winning ISDL description here")
	wRun := flag.Float64("w-runtime", 1, "objective weight: run time (us)")
	wArea := flag.Float64("w-area", 0.5, "objective weight: area (10k grid cells)")
	wPow := flag.Float64("w-power", 0.2, "objective weight: power (mW)")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry here (JSON, or Prometheus text if the name ends in .prom)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file here (chrome://tracing, Perfetto)")
	quietObs := flag.Bool("no-summary", false, "suppress the metrics summary table on stderr")
	remote := flag.String("remote", "", "evaluate on a cmd/served daemon (http://HOST) instead of locally; see docs/SERVICE.md")
	dashAddr := flag.String("dash", "", "serve the live dashboard on this address (e.g. :8355) while running")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address while running")
	sampleEvery := flag.Duration("sample-every", time.Second, "dashboard sampling interval (with -dash)")
	flightCap := flag.Int("flight", 256, "flight-recorder capacity (last N completed spans)")
	flag.Parse()
	if *machine == "" || *kernelFile == "" {
		fmt.Fprintln(os.Stderr, "usage: explore -m <machine> -k <kernel.k> [-strategy hill|beam|pareto] [-beam w] [-max-area a -max-power p -frontier-out f.json] [-restarts n] [-seed s] [-iters n] [-o best.isdl]")
		os.Exit(2)
	}
	// Reject a meaningless objective before any evaluation runs: NaN,
	// negative or all-zero weights would otherwise silently score every
	// candidate into an accept test that never fires.
	weights := explore.Weights{Runtime: *wRun, Area: *wArea, Power: *wPow}
	if err := weights.Validate(); err != nil {
		fatal(err)
	}
	constraints := explore.Constraints{MaxRuntimeUs: *maxRuntime, MaxArea: *maxArea, MaxPowerMW: *maxPower}
	if err := constraints.Validate(); err != nil {
		fatal(err)
	}
	if *strategy != "pareto" {
		if constraints.Active() {
			fatal(fmt.Errorf("-max-runtime/-max-area/-max-power require -strategy pareto"))
		}
		if *frontierOut != "" {
			fatal(fmt.Errorf("-frontier-out requires -strategy pareto"))
		}
	}
	frontierWriter, err := frontierWriterFor(*frontierOut)
	if err != nil {
		fatal(err) // bad extension: fail before the run, not after
	}
	baseSrc, err := loadSource(*machine)
	if err != nil {
		fatal(err)
	}
	kernel, err := os.ReadFile(*kernelFile)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(*flightCap)
	reg.AttachFlight(flight)
	dumpFlightOnQuit(flight)
	var sampler *obs.Sampler
	if *dashAddr != "" {
		sampler = obs.NewSampler(reg, *sampleEvery, 0)
		sampler.Start()
		defer sampler.Stop()
		go serveDebug(*dashAddr, reg, sampler, flight)
		fmt.Fprintf(os.Stderr, "explore: dashboard on http://localhost%s/dash\n", normalizeAddr(*dashAddr))
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, http.DefaultServeMux); err != nil {
				log.Println("explore: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "explore: pprof on http://localhost%s/debug/pprof/\n", normalizeAddr(*pprofAddr))
	}

	if *remote != "" {
		runRemote(*remote, *machine, baseSrc, string(kernel), reg, *metricsOut, *traceOut, *quietObs)
		return
	}

	var cache *core.EvalCache
	if !*noCache {
		cache = core.NewEvalCache()
		if *cacheFile != "" {
			if loaded, err := cache.Stages().LoadFileIfExists(*cacheFile); err != nil {
				fatal(err) // corrupt/unreadable: never silently start cold
			} else if loaded {
				fmt.Printf("loaded stage cache %s (%d artifacts)\n", *cacheFile, cache.Stages().Len())
			} else {
				fmt.Printf("no stage cache at %s yet; starting empty\n", *cacheFile)
			}
		}
		if *storeSpec != "" {
			st, err := blob.Open(*storeSpec)
			if err != nil {
				fatal(err)
			}
			// A tracing run tells the remote store who is asking, so a
			// traced daemon records its side of every transfer.
			if hc, ok := st.(*blob.HTTP); ok && *traceOut != "" {
				hc.SetTrace(obs.TraceContext{TraceID: reg.TraceID()})
			}
			cache.Stages().SetStore(st)
			gensim.SetStore(st) // share built aot simulator binaries too
			fmt.Printf("sharing artifacts via %s\n", *storeSpec)
		}
	} else if *storeSpec != "" {
		fatal(fmt.Errorf("-store requires caching; drop -no-cache"))
	}

	sb, err := xsim.ParseBackend(*simBackend)
	if err != nil {
		fatal(err)
	}

	opts := []explore.Option{
		explore.WithWeights(weights),
		explore.WithMaxIters(*iters),
		explore.WithWorkers(*workers),
		explore.WithLog(func(ev explore.Event) { fmt.Println(ev.Line) }),
		explore.WithObs(reg),
	}
	if *simBackend != "" {
		ev := core.NewEvaluator()
		ev.SimBackend = sb
		opts = append(opts, explore.WithEvaluator(ev))
	}
	switch *strategy {
	case "hill":
		// The default HillClimb strategy.
	case "beam":
		opts = append(opts, explore.WithBeam(*beamWidth))
	case "pareto":
		opts = append(opts, explore.WithPareto(*frontierCap, constraints))
	default:
		fatal(fmt.Errorf("unknown -strategy %q (want hill, beam or pareto)", *strategy))
	}
	if *restarts > 0 {
		opts = append(opts, explore.WithRestarts(*restarts, *seed))
	}
	if *noCache {
		opts = append(opts, explore.WithoutCache())
	} else {
		opts = append(opts, explore.WithCache(cache))
	}
	res, err := explore.New(baseSrc, string(kernel), opts...).Run()
	if err != nil {
		fatal(err)
	}
	writeObsOutputs(reg, *metricsOut, *traceOut, *quietObs)
	fmt.Println()
	fmt.Print(res.Report())
	if cache != nil {
		opHits, opMisses := xsim.SharedOpCache().Stats()
		fmt.Printf("stage cache: %s\n", cache.Stages().StatsLine())
		fmt.Printf("op-closure cache: %d reused / %d compiled\n", opHits, opMisses)
		if *storeSpec != "" {
			sh, sm, se := cache.Stages().StoreStats()
			fmt.Printf("blob store: %d served / %d absent / %d errors\n", sh, sm, se)
		}
		if *cacheFile != "" {
			if err := cache.Stages().SaveFile(*cacheFile); err != nil {
				fatal(err)
			}
			fmt.Printf("saved stage cache %s (%d artifacts)\n", *cacheFile, cache.Stages().Len())
		}
	}
	if *frontierOut != "" {
		if err := atomicfile.WriteTo(*frontierOut, 0o644, func(w io.Writer) error {
			return frontierWriter(w, res.Frontier)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote frontier %s (%d points)\n", *frontierOut, len(res.Frontier))
	}
	if *out != "" {
		if err := atomicfile.WriteFile(*out, []byte(res.FinalSource), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// frontierWriterFor picks the -frontier-out serializer by file extension
// (nil name = no output requested).
func frontierWriterFor(name string) (func(io.Writer, []explore.FrontierPoint) error, error) {
	switch {
	case name == "":
		return nil, nil
	case strings.HasSuffix(name, ".json"):
		return explore.WriteFrontierJSON, nil
	case strings.HasSuffix(name, ".csv"):
		return explore.WriteFrontierCSV, nil
	}
	return nil, fmt.Errorf("-frontier-out %q: want a .json or .csv name", name)
}

// writeFileWith streams one of the registry exporters into a file,
// atomically: the write lands in a temp file that replaces name only on
// success, so a failing exporter leaves any existing file untouched.
func writeFileWith(name string, write func(io.Writer) error) error {
	return atomicfile.WriteTo(name, 0o644, write)
}

// writeObsOutputs emits the observability artifacts a run was asked
// for: the stderr summary, -metrics-out (JSON, or Prometheus text when
// the name ends in .prom) and -trace-out.
func writeObsOutputs(reg *obs.Registry, metricsOut, traceOut string, quiet bool) {
	if !quiet {
		fmt.Fprintln(os.Stderr)
		if err := reg.WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		exporter := reg.WriteMetricsJSON
		if strings.HasSuffix(metricsOut, ".prom") {
			exporter = reg.WriteProm
		}
		if err := writeFileWith(metricsOut, exporter); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := writeFileWith(traceOut, reg.WriteTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace %s (open in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
}

// runRemote is the -remote thin-client mode: one evaluation on a
// cmd/served daemon, with the daemon's spans merged back under this
// process's trace. Builtin machine names travel as names (the daemon
// resolves them); anything else travels as raw ISDL source.
func runRemote(daemon, machineArg, baseSrc, kernel string, reg *obs.Registry, metricsOut, traceOut string, quiet bool) {
	req := service.JobRequest{Kernel: kernel, Workload: "kernel"}
	if _, builtin := repro.Machines()[machineArg]; builtin {
		req.Machine = machineArg
	} else {
		req.ISDL = baseSrc
	}
	reg.SetLaneName(0, "client")
	reg.SetLaneName(service.RemoteLaneBase+0, "served:jobs")
	reg.SetLaneName(service.RemoteLaneBase+1, "served:queue")

	root := reg.StartSpan("explore.remote")
	client := service.NewClient(daemon)
	st, err := client.EvaluateTraced(context.Background(), req, reg, root, 0)
	root.End()
	if err != nil {
		fatal(err)
	}
	ev := st.Eval
	fmt.Printf("remote evaluation %s on %s (cached=%v, %d daemon spans merged)\n",
		st.ID, daemon, st.Cached, len(st.Spans))
	if ev != nil {
		fmt.Printf("  machine=%s workload=%s\n", ev.Machine, ev.Workload)
		fmt.Printf("  cycles=%d instructions=%d\n", ev.Cycles, ev.Instructions)
		fmt.Printf("  runtime=%.3fus area=%.0fcells power=%.2fmW energy=%.3fuJ\n",
			ev.RuntimeUs, ev.AreaCells, ev.PowerMW, ev.EnergyUJ)
	}
	writeObsOutputs(reg, metricsOut, traceOut, quiet)
}

// serveDebug hosts the live dashboard endpoints during a run.
func serveDebug(addr string, reg *obs.Registry, sampler *obs.Sampler, flight *obs.FlightRecorder) {
	mux := http.NewServeMux()
	mux.Handle("GET /dash", obs.DashHandler(sampler))
	mux.Handle("GET /dash/data", obs.DashHandler(sampler))
	mux.HandleFunc("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		flight.WriteJSON(w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		reg.WriteMetricsJSON(w)
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Println("explore: dashboard server:", err)
	}
}

// dumpFlightOnQuit prints the flight recorder to stderr on SIGQUIT
// without interrupting the run.
func dumpFlightOnQuit(flight *obs.FlightRecorder) {
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "explore: flight recorder dump (SIGQUIT):")
			if err := flight.WriteJSON(os.Stderr); err != nil {
				log.Println("explore: flight dump:", err)
			}
		}
	}()
}

// normalizeAddr makes a bare ":port" printable as localhost:port.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return addr
	}
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[i:]
	}
	return ":" + addr
}

func loadSource(arg string) (string, error) {
	if src, ok := repro.Machines()[arg]; ok {
		return src, nil
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explore:", err)
	os.Exit(1)
}
