package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFileWithPartialWrite: the -metrics-out/-trace-out path goes
// through writeFileWith, so an exporter that fails mid-stream must leave
// a pre-existing artifact from an earlier run byte-identical.
func TestWriteFileWithPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, []byte(`{"from":"previous run"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("exporter failed")
	err := writeFileWith(path, func(w io.Writer) error {
		if _, err := w.Write([]byte(`{"half":`)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writeFileWith error = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != `{"from":"previous run"}` {
		t.Fatalf("artifact after failed export = %q, %v; want previous content intact", got, err)
	}
}

// TestFrontierWriterFor pins the -frontier-out format selection: extension
// picks the serializer, anything else fails before the run starts.
func TestFrontierWriterFor(t *testing.T) {
	if w, err := frontierWriterFor(""); w != nil || err != nil {
		t.Errorf("empty name: writer non-nil=%v, err %v; want nil, nil", w != nil, err)
	}
	for _, ok := range []string{"frontier.json", "out/frontier.csv"} {
		w, err := frontierWriterFor(ok)
		if w == nil || err != nil {
			t.Errorf("%s: writer non-nil=%v, err %v; want serializer", ok, w != nil, err)
		}
	}
	for _, bad := range []string{"frontier.txt", "frontier", "frontier.jsonl"} {
		if _, err := frontierWriterFor(bad); err == nil {
			t.Errorf("%s: accepted, want extension error", bad)
		}
	}
}

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		":8080":          ":8080",
		"localhost:9090": ":9090",
		"7070":           ":7070",
	}
	for in, want := range cases {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}
