// FIR on SPAM: the paper's DSP motivation end to end. The 16-tap filter runs
// on the generated cycle-accurate simulator of the reconstructed SPAM VLIW
// (4 operations + 3 parallel moves); the example verifies every output
// against a Go reference model, then runs the full evaluation methodology —
// cycles × cycle-length, die size, power — exactly what the exploration loop
// of Figure 1 ranks candidates by.
//
//	go run ./examples/fir
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/machines"
)

func main() {
	const taps, nout = 16, 64
	samples, coefs := machines.FIRTestVectors(taps, nout)

	d, err := repro.ParseISDL(machines.SPAMSource)
	if err != nil {
		log.Fatal(err)
	}
	src := machines.FIRSPAM(taps, nout, samples, coefs)
	p, err := repro.Assemble(d, src)
	if err != nil {
		log.Fatal(err)
	}

	sim := repro.NewSimulator(d)
	if err := sim.Load(p); err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		log.Fatal(err)
	}

	want := machines.FIRReference(taps, nout, samples, coefs)
	bad := 0
	for i, w := range want {
		got := sim.State().Get("DMX", machines.FIRSPAMOutBase+i).Uint64()
		if got != uint64(w) {
			bad++
			fmt.Printf("  y[%d] = %d, want %d\n", i, got, w)
		}
	}
	fmt.Printf("FIR(%d taps, %d outputs): %d/%d outputs bit-exact vs reference\n",
		taps, nout, nout-bad, nout)
	fmt.Println()
	fmt.Print(sim.Stats().Summary(d))

	// The full methodology: combine the simulation with the hardware model.
	eval, err := repro.Evaluate(d, p, "fir16x64")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(eval.Summary())
}
