// Retargeting: compile one kernel for three different architectures with the
// retargetable compiler (the AVIV role in the paper's Figure 1), run each on
// its generated simulator, and compare the performance — the measurement the
// exploration loop uses to choose between candidate machines.
//
//	go run ./examples/retarget
package main

import (
	"fmt"
	"log"

	"repro"
)

// One kernel, three machines. The kernel sums an array and counts how many
// elements exceed a threshold. %s is the per-machine data memory.
const kernelTemplate = `
var i, s, hits;
array a[16] in %s at 0 = { 12, 7, 3, 25, 14, 9, 31, 2, 18, 6, 11, 27, 4, 15, 22, 8 };
s = 0;
hits = 0;
for i = 0 to 15 {
  s = s + a[i];
  if (a[i] > 13) { hits = hits + 1; }
}
`

func main() {
	arrayMem := map[string]string{"toy": "DMEM", "spam": "DMX", "spam2": "DM", "risc32": "DMEM"}
	for _, name := range []string{"toy", "spam2", "spam", "risc32"} {
		d, err := repro.ParseISDL(repro.Machines()[name])
		if err != nil {
			log.Fatal(err)
		}
		kernel := fmt.Sprintf(kernelTemplate, arrayMem[name])
		asmText, err := repro.Compile(d, kernel)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		p, err := repro.Assemble(d, asmText)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		sim := repro.NewSimulator(d)
		if err := sim.Load(p); err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		depth := d.StorageByName["RF"].Depth
		s := sim.State().Get("RF", depth-2).Uint64()
		hits := sim.State().Get("RF", depth-3).Uint64()
		fmt.Printf("%-6s %4d instructions, %4d cycles   s=%d hits=%d\n",
			d.Name, sim.Stats().Instructions, sim.Cycle(), s, hits)
	}
	fmt.Println("\n(s should be 214 and hits 7 on all four machines — bit-true across architectures)")
}
