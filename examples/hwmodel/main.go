// Hardware model: generate the synthesizable Verilog for SPAM2 with HGEN
// (paper §4), print the Table-2-style synthesis report, then lock-step the
// generated instruction-level simulator against an event-driven simulation
// of the emitted Verilog — demonstrating that "the synthesizable Verilog
// model is itself a simulator" and that both generated models implement the
// same machine bit for bit.
//
//	go run ./examples/hwmodel
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/machines"
	"repro/internal/verilog"
)

const program = `
    mvi R1, #0
    mvi R2, #12
loop:
    beqz R2, done
    add R1, R1, R2
    sub R2, R2, #1
    jmp loop
done:
    halt
`

func main() {
	d, err := repro.ParseISDL(machines.SPAM2Source)
	if err != nil {
		log.Fatal(err)
	}

	hw, err := repro.Synthesize(d, nil, repro.DefaultSynthesisOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hw.Report())
	fmt.Println()

	mod, err := verilog.Parse(hw.VerilogText)
	if err != nil {
		log.Fatal(err)
	}
	vsim, err := verilog.NewSim(mod)
	if err != nil {
		log.Fatal(err)
	}

	p, err := repro.Assemble(d, program)
	if err != nil {
		log.Fatal(err)
	}
	ils := repro.NewSimulator(d)
	if err := ils.Load(p); err != nil {
		log.Fatal(err)
	}
	for i, w := range p.Words {
		if err := vsim.SetMem("s_IMEM", i, w); err != nil {
			log.Fatal(err)
		}
	}

	steps := 0
	for !ils.Halted() {
		if err := ils.Step(); err != nil {
			log.Fatal(err)
		}
		ils.FlushPending()
		if err := vsim.Tick("clk"); err != nil {
			log.Fatal(err)
		}
		steps++
		// Cross-check the register file every instruction.
		for r := 0; r < 8; r++ {
			a := ils.State().Get("RF", r)
			b, err := vsim.GetMem("s_RF", r)
			if err != nil {
				log.Fatal(err)
			}
			if !a.Eq(b) {
				log.Fatalf("step %d: RF[%d] mismatch: ILS %s vs HW %s", steps, r, a, b)
			}
		}
	}
	sum, _ := vsim.GetMem("s_RF", 1)
	fmt.Printf("co-simulation: %d instructions lock-stepped, ILS == Verilog model\n", steps)
	fmt.Printf("sum(1..12) = %d on both models (%d events in the event-driven run)\n",
		sum.Uint64(), vsim.Events())
}
