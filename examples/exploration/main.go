// Exploration: architecture exploration by iterative improvement (paper §1,
// Figure 1). Starting from the SPAM2 description, the driver mutates the
// instruction set — dropping operations the kernel never needs, retiming
// functional units, shrinking memories — recompiles the kernel with the
// retargetable compiler, re-evaluates each candidate with the generated
// simulator and hardware model, and hill-climbs run time, area and power.
// Add explore.WithBeam(4) / explore.WithRestarts(3, seed) to the option
// list to search with a beam frontier or seeded random restarts instead
// (docs/EXPLORE.md).
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/explore"
)

const kernel = `
var i, s;
array a[32] in DM at 0 = { 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
                           2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5 };
array b[32] in DM at 64;
s = 0;
for i = 0 to 31 {
  b[i] = a[i] + a[i];
  s = s + b[i];
}
`

func main() {
	res, err := repro.NewExploration(repro.Machines()["spam2"], kernel,
		explore.WithMaxIters(6),
		explore.WithLog(func(ev explore.Event) { fmt.Println(ev.Line) }),
	).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Report())
	fmt.Printf("\nruntime %.2f -> %.2f us, area %.0f -> %.0f cells, power %.1f -> %.1f mW\n",
		res.Initial.RuntimeUs, res.Final.RuntimeUs,
		res.Initial.AreaCells, res.Final.AreaCells,
		res.Initial.PowerMW, res.Final.PowerMW)
}
