// Quickstart: describe a tiny processor in ISDL, generate its simulator,
// assemble a program, and run it — the core loop of the paper in ~100 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

// A minimal accumulator machine: 8-bit datapath, one field, five operations.
const machine = `
Machine acc8;
Format 16;

Section Global_Definitions

Token GPR "R" [0..3];
Token IMM8 imm signed 8;

Non_Terminal SRC width 9 :
  option (r: GPR)
    Encode { R[8] = 0b0; R[7:2] = 0b000000; R[1:0] = r; }
    Value { RF[r] }
  option "#" (i: IMM8)
    Encode { R[8] = 0b1; R[7:0] = i; }
    Value { i }
;

Section Storage

InstructionMemory IMEM width 16 depth 64;
RegFile RF width 8 depth 4;
ControlRegister HLT width 1;
ProgramCounter PC width 6;

Section Instruction_Set

Field EX:
  op add (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[15:13] = 0b000; I[12:11] = d; I[10:9] = a; I[8:0] = s; }
    Action { RF[d] <- RF[a] + s; }
  op mv (d: GPR) "," (s: SRC)
    Encode { I[15:13] = 0b001; I[12:11] = d; I[8:0] = s; }
    Action { RF[d] <- s; }
  op bne (a: GPR) "," (b: GPR) "," (t: IMM8)
    Encode { I[15:13] = 0b010; I[12:11] = a; I[10:9] = b; I[7:0] = t; }
    Action { if (RF[a] != RF[b]) { PC <- zext(t, 6); } }
  op halt
    Encode { I[15:13] = 0b011; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[15:13] = 0b111; }
`

// Sum the numbers 1..10 into R1.
const program = `
    mv R1, #0      ; sum
    mv R2, #10     ; counter
    mv R3, #0      ; zero
loop:
    add R1, R1, R2
    add R2, R2, #-1
    bne R2, R3, loop
    halt
`

func main() {
	d, err := repro.ParseISDL(machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine %s: %d-bit instructions, %d operations\n",
		d.Name, d.WordWidth, len(d.Fields[0].Ops))

	p, err := repro.Assemble(d, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d words; disassembly round trip:\n%s\n",
		len(p.Words), repro.Disassemble(p))

	sim := repro.NewSimulator(d)
	if err := sim.Load(p); err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("halted after %d cycles; R1 = %d (want 55)\n",
		sim.Cycle(), sim.State().Get("RF", 1).Uint64())
	fmt.Println()
	fmt.Print(sim.Stats().Summary(d))
}
